package shard

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/geom"
)

// rebalanceOpts is the base rebalancing configuration the tests build
// engines from: small floors so transitions are easy to force.
func rebalanceOpts() Options {
	return Options{
		Machine: testCfg, Shards: 4, Workers: 2, Dynamic: true,
		Rebalance: true, MinShardPoints: 4, RebalanceEvery: 8, MaxShards: 16,
	}
}

// checkBothFamilies cross-checks both query families against the oracle
// over ref — the acceptance bar after every topology change.
func checkBothFamilies(t *testing.T, eng *Engine, ref []geom.Point, span geom.Coord, seed int64, ctx string) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for q := 0; q < 30; q++ {
		x1, x2, beta := randTopOpen(rng, span)
		samePoints(t, eng.TopOpen(x1, x2, beta),
			geom.RangeSkyline(ref, geom.TopOpen(x1, x2, beta)), ctx+" top q="+itoa(q))
		r := randFourSided(rng, span)
		samePoints(t, eng.FourSided(r), geom.RangeSkyline(ref, r), ctx+" four q="+itoa(q))
	}
}

// TestRebalanceValidation pins the option contract: rebalancing needs
// the dynamic per-shard registry, and a skew trigger below 1 is
// meaningless.
func TestRebalanceValidation(t *testing.T) {
	if _, err := New(Options{Machine: testCfg, Rebalance: true}, nil); err == nil {
		t.Fatal("Rebalance without Dynamic accepted")
	}
	if _, err := New(Options{Machine: testCfg, Dynamic: true, Rebalance: true, MaxSkew: 0.5}, nil); err == nil {
		t.Fatal("MaxSkew below 1 accepted")
	}
}

// TestRebalanceForcedTransitions drives explicit splits and merges
// through the public Force entry points and checks, after every
// transition: both query families byte-identical to the oracle, the
// counters, the cut ordering, and the listener receiving each new cut
// set in transition order with no engine locks held.
func TestRebalanceForcedTransitions(t *testing.T) {
	const n = 600
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 8500)
	geom.SortByX(pts)
	eng, err := New(rebalanceOpts(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if c := eng.RebalanceCounters(); c.Splits != 0 || c.Merges != 0 || c.Shards != 4 || c.Skew != 0 {
		t.Fatalf("idle counters = %+v", c)
	}
	var mu sync.Mutex
	var heard [][]geom.Coord
	eng.SetCutsListener(func(cuts []geom.Coord) {
		// The listener may call back into the engine: no lock is held.
		_ = eng.NumShards()
		mu.Lock()
		heard = append(heard, cuts)
		mu.Unlock()
	})

	steps := []struct {
		name  string
		run   func() error
		split bool
	}{
		{"split hottest", func() error { return eng.ForceSplit(-1) }, true},
		{"split 2", func() error { return eng.ForceSplit(2) }, true},
		{"merge coldest", func() error { return eng.ForceMerge(-1) }, false},
		{"merge 0", func() error { return eng.ForceMerge(0) }, false},
	}
	wantShards, wantSplits, wantMerges := 4, uint64(0), uint64(0)
	for i, step := range steps {
		if err := step.run(); err != nil {
			t.Fatalf("%s: %v", step.name, err)
		}
		if step.split {
			wantShards++
			wantSplits++
		} else {
			wantShards--
			wantMerges++
		}
		c := eng.RebalanceCounters()
		if c.Splits != wantSplits || c.Merges != wantMerges || c.Shards != wantShards {
			t.Fatalf("%s: counters = %+v, want %d/%d/%d", step.name, c, wantSplits, wantMerges, wantShards)
		}
		cuts := eng.Cuts()
		if len(cuts) != wantShards-1 {
			t.Fatalf("%s: %d cuts for %d shards", step.name, len(cuts), wantShards)
		}
		for j := 1; j < len(cuts); j++ {
			if cuts[j-1] >= cuts[j] {
				t.Fatalf("%s: cuts not increasing: %v", step.name, cuts)
			}
		}
		mu.Lock()
		if len(heard) != i+1 {
			t.Fatalf("%s: listener heard %d transitions, want %d", step.name, len(heard), i+1)
		}
		last := heard[len(heard)-1]
		mu.Unlock()
		if len(last) != len(cuts) {
			t.Fatalf("%s: listener got %v, engine has %v", step.name, last, cuts)
		}
		for j := range last {
			if last[j] != cuts[j] {
				t.Fatalf("%s: listener got %v, engine has %v", step.name, last, cuts)
			}
		}
		checkBothFamilies(t, eng, pts, span, int64(8600+i), step.name)
	}
	if eng.Len() != n {
		t.Fatalf("Len = %d after transitions, want %d", eng.Len(), n)
	}
}

// TestRebalanceForceErrors covers every refusal: disabled engine,
// out-of-range indices, a shard too small to split, and a single-shard
// engine with nothing to merge.
func TestRebalanceForceErrors(t *testing.T) {
	pts := geom.GenUniform(200, 4000, 8700)
	geom.SortByX(pts)
	plain, err := New(Options{Machine: testCfg, Shards: 4, Dynamic: true}, pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := plain.ForceSplit(0); err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Fatalf("ForceSplit on plain engine: %v", err)
	}
	if err := plain.ForceMerge(0); err == nil || !strings.Contains(err.Error(), "disabled") {
		t.Fatalf("ForceMerge on plain engine: %v", err)
	}

	eng, err := New(rebalanceOpts(), pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.ForceSplit(99); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("ForceSplit(99): %v", err)
	}
	if err := eng.ForceMerge(99); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("ForceMerge(99): %v", err)
	}

	opts := rebalanceOpts()
	opts.Shards = 1
	tiny, err := New(opts, pts[:1])
	if err != nil {
		t.Fatal(err)
	}
	if err := tiny.ForceSplit(0); err == nil || !strings.Contains(err.Error(), "too small") {
		t.Fatalf("ForceSplit on 1-point shard: %v", err)
	}
	// One shard: the coldest-pair pick has no pair, merge must refuse.
	if err := tiny.ForceMerge(-1); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("ForceMerge on single-shard engine: %v", err)
	}
}

// TestRebalancePolicy drives the load policy itself: a stream of
// inserts landing entirely in the rightmost shard's x-range must trip
// splits (the hot shard exceeds MaxSkew × mean), and once the shard
// count hits MaxShards the idle left shards must trip merges (coldest
// pair far under the mean). Answers stay oracle-identical throughout.
func TestRebalancePolicy(t *testing.T) {
	const n, stream = 300, 500
	span := geom.Coord((n + stream) * 16)
	// GenUniform returns x-sorted points: the tail of the pool lies
	// entirely right of the base's cuts, which is exactly the hot
	// stream the policy exists for.
	all := geom.GenUniform(n+stream, span, 8800)
	base := append([]geom.Point(nil), all[:n]...)
	pool := all[n:]
	opts := rebalanceOpts()
	opts.MaxSkew = 1.5
	opts.MaxShards = 6
	eng, err := New(opts, base)
	if err != nil {
		t.Fatal(err)
	}
	ref := append([]geom.Point(nil), base...)
	for i, p := range pool {
		if i%3 == 0 {
			// Batches exercise the batched cadence accounting.
			hi := i + 1
			if hi > len(pool) {
				hi = len(pool)
			}
			if err := eng.BatchInsert(pool[i:hi]); err != nil {
				t.Fatal(err)
			}
			ref = append(ref, pool[i:hi]...)
		} else {
			if err := eng.Insert(p); err != nil {
				t.Fatal(err)
			}
			ref = append(ref, p)
		}
	}
	c := eng.RebalanceCounters()
	if c.Splits == 0 {
		t.Fatalf("hot stream tripped no splits: %+v", c)
	}
	if c.Merges == 0 {
		t.Fatalf("cold left shards tripped no merges after hitting MaxShards: %+v", c)
	}
	if c.Shards > opts.MaxShards {
		t.Fatalf("shard count %d exceeded MaxShards %d", c.Shards, opts.MaxShards)
	}
	if c.Skew < 0 {
		t.Fatalf("negative skew: %+v", c)
	}
	if eng.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", eng.Len(), len(ref))
	}
	checkBothFamilies(t, eng, ref, span, 8801, "post-policy")

	// A no-op batch delete must not advance the policy cadence.
	before := eng.rebalOps.Load()
	if removed, err := eng.BatchDelete([]geom.Point{{X: -5, Y: -5}}); err != nil || removed != 0 {
		t.Fatalf("BatchDelete(absent) = %d, %v", removed, err)
	}
	if eng.rebalOps.Load() != before {
		t.Fatal("a removed-nothing batch advanced the rebalance cadence")
	}
}

// TestRebalanceGenRetry races an insert/delete storm against forced
// transitions: the storm moves the victim shards' generations while the
// replacement structures build unlocked, driving the stale-validation
// retries (and, when every retry loses, the rebuild-under-exclusive-lock
// fallback). Whatever path each transition takes, answers and Len must
// come out oracle-identical.
func TestRebalanceGenRetry(t *testing.T) {
	const n = 600
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 8900)
	geom.SortByX(pts)
	opts := rebalanceOpts()
	opts.Shards = 2
	eng, err := New(opts, pts)
	if err != nil {
		t.Fatal(err)
	}

	// The storm targets x < 0: always routed to the leftmost shard, no
	// matter where transitions move the cuts. Odd slots are deleted
	// again, so generations move on both the insert and delete paths.
	const stormN = 400
	storm := make([]geom.Point, stormN)
	for i := range storm {
		storm[i] = geom.Point{X: -geom.Coord(i + 1), Y: span + geom.Coord(i) + 1}
	}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			p := storm[i%stormN]
			select {
			case <-stop:
				return
			default:
			}
			if i%(2*stormN) < stormN {
				if err := eng.Insert(p); err != nil {
					t.Error(err)
					return
				}
			} else {
				if ok, err := eng.Delete(p); err != nil || !ok {
					t.Errorf("Delete(%v) = %t, %v", p, ok, err)
					return
				}
			}
		}
	}()
	for round := 0; round < 6; round++ {
		if err := eng.ForceSplit(0); err != nil && !strings.Contains(err.Error(), "too small") {
			t.Fatal(err)
		}
		if err := eng.ForceMerge(0); err != nil && !strings.Contains(err.Error(), "out of range") {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if t.Failed() {
		return
	}

	// Drain the storm's leftovers to a known state: whatever is still
	// inserted gets deleted, then the base alone must remain.
	for _, p := range storm {
		if _, err := eng.Delete(p); err != nil {
			t.Fatal(err)
		}
	}
	if eng.Len() != n {
		t.Fatalf("Len = %d after storm drain, want %d", eng.Len(), n)
	}
	checkBothFamilies(t, eng, pts, span, 8901, "post-storm")
}

// forceStale drives one transition through its stale-validation
// retries deterministically. The test holds topoMu shared, so the
// transition — started concurrently — captures its generation, builds
// unlocked, and then blocks at the exclusive swap. Each round the test
// bumps the victim shard's generation and releases; the swap proceeds,
// fails validation, and retries. Because the bump always lands while
// the swap is blocked, every gated attempt is stale by construction;
// after rounds > maxRetries the transition must fall back to rebuilding
// under the exclusive lock rather than spinning forever.
func forceStale(t *testing.T, eng *Engine, victim *shard, rounds int, run func() error) {
	t.Helper()
	errc := make(chan error, 1)
	eng.topoMu.RLock()
	go func() {
		eng.rebalMu.Lock()
		defer eng.rebalMu.Unlock()
		errc <- run()
	}()
	for round := 0; round < rounds; round++ {
		// Let the attempt capture and finish its unlocked build; it is
		// then parked at the exclusive topology lock.
		time.Sleep(20 * time.Millisecond)
		victim.mu.Lock()
		victim.gen++
		victim.mu.Unlock()
		eng.topoMu.RUnlock()
		if round < rounds-1 {
			eng.topoMu.RLock()
		}
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
}

// TestRebalanceStaleRetry forces the generation-validation machinery
// through both outcomes — retry-and-win and the final
// rebuild-under-exclusive-lock fallback — for split and merge alike,
// then checks the answers came out oracle-identical anyway.
func TestRebalanceStaleRetry(t *testing.T) {
	const n = 2000
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 9100)
	geom.SortByX(pts)

	opts := rebalanceOpts()
	opts.Shards = 1
	eng, err := New(opts, pts)
	if err != nil {
		t.Fatal(err)
	}
	// Four stale rounds: attempts 0–2 retry, attempt 3 exhausts
	// maxRetries and must take the rebuild-under-lock fallback.
	forceStale(t, eng, eng.shards[0], 4, func() error { return eng.split(0, 2) })
	if got := eng.RebalanceCounters(); got.Splits != 1 || got.Shards != 2 {
		t.Fatalf("after stale split: %+v", got)
	}
	checkBothFamilies(t, eng, pts, span, 9101, "stale split")

	// Same protocol against merge, with the second shard as the victim.
	forceStale(t, eng, eng.shards[1], 4, func() error { return eng.merge(0) })
	if got := eng.RebalanceCounters(); got.Merges != 1 || got.Shards != 1 {
		t.Fatalf("after stale merge: %+v", got)
	}
	checkBothFamilies(t, eng, pts, span, 9102, "stale merge")
}

// TestSnapshotAcrossTransition pins a snapshot, then splits and merges
// the live engine: the pinned view must keep answering from its frozen
// topology (the retired shards it pinned are never mutated), the
// retention ledger must keep counting the retired disks, and Release
// must return every retention and deferred block.
func TestSnapshotAcrossTransition(t *testing.T) {
	const n = 500
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 9000)
	geom.SortByX(pts)
	eng, err := New(rebalanceOpts(), pts)
	if err != nil {
		t.Fatal(err)
	}
	v, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sv := v.(*Snapshot)
	if got := eng.Retained(); got != 4 {
		t.Fatalf("Retained = %d at pin, want one per shard", got)
	}

	check := func(stage string) {
		t.Helper()
		rng := rand.New(rand.NewSource(9001))
		for q := 0; q < 25; q++ {
			x1, x2, beta := randTopOpen(rng, span)
			samePoints(t, sv.TopOpen(x1, x2, beta),
				geom.RangeSkyline(pts, geom.TopOpen(x1, x2, beta)), stage+" top q="+itoa(q))
			r := randFourSided(rng, span)
			samePoints(t, sv.RangeSkyline(r), geom.RangeSkyline(pts, r), stage+" four q="+itoa(q))
			top := geom.TopOpen(x1, x2, beta)
			samePoints(t, sv.RangeSkyline(top), geom.RangeSkyline(pts, top), stage+" routed-top q="+itoa(q))
		}
	}
	check("pre-transition")
	if err := eng.ForceSplit(-1); err != nil {
		t.Fatal(err)
	}
	check("post-split")
	if err := eng.ForceMerge(-1); err != nil {
		t.Fatal(err)
	}
	check("post-merge")
	// The retired shards' retentions are still open and still counted.
	if got := eng.Retained(); got != 4 {
		t.Fatalf("Retained = %d after transitions, want the pinned 4", got)
	}
	sv.Release()
	if got := eng.Retained(); got != 0 {
		t.Fatalf("Retained = %d after Release, want 0", got)
	}
	if got := eng.DeferredBlocks(); got != 0 {
		t.Fatalf("DeferredBlocks = %d after Release, want 0", got)
	}
}
