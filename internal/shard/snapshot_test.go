package shard

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

// TestSnapshotFrozenAnswers pins a dynamic sharded engine and asserts
// the pinned view keeps answering both query families byte-identically
// to the oracle frozen at the pin while the live engine absorbs
// inserts and deletes of pinned points — then that Release returns
// every retention and deferred block.
func TestSnapshotFrozenAnswers(t *testing.T) {
	const n = 500
	span := geom.Coord(n * 16)
	all := geom.GenUniform(n+150, span, 5100)
	pts := append([]geom.Point(nil), all[:n]...)
	pool := all[n:]
	geom.SortByX(pts)

	eng, err := New(Options{Machine: testCfg, Shards: 4, Workers: 2, Dynamic: true}, pts)
	if err != nil {
		t.Fatal(err)
	}
	v, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sv := v.(*Snapshot)
	frozen := append([]geom.Point(nil), pts...)
	if sv.Len() != len(frozen) {
		t.Fatalf("Len() = %d, want %d", sv.Len(), len(frozen))
	}
	if eng.Retained() == 0 {
		t.Fatal("Retained() = 0 with a pinned snapshot open")
	}

	rng := rand.New(rand.NewSource(51))
	check := func(stage string) {
		t.Helper()
		for i := 0; i < 25; i++ {
			x1, x2, beta := randTopOpen(rng, span)
			samePoints(t, sv.TopOpen(x1, x2, beta),
				geom.RangeSkyline(frozen, geom.TopOpen(x1, x2, beta)),
				fmt.Sprintf("%s topopen %d", stage, i))
			y1 := rng.Int63n(span)
			q := geom.Rect{X1: rng.Int63n(span), X2: rng.Int63n(span), Y1: y1, Y2: y1 + rng.Int63n(span/2+1)}
			if q.X1 > q.X2 {
				q.X1, q.X2 = q.X2, q.X1
			}
			samePoints(t, sv.FourSided(q), geom.RangeSkyline(frozen, q),
				fmt.Sprintf("%s foursided %d", stage, i))
			samePoints(t, sv.RangeSkyline(q), geom.RangeSkyline(frozen, q),
				fmt.Sprintf("%s routed %d", stage, i))
		}
		// Degenerate rectangles answer empty without fanning out.
		if got := sv.TopOpen(10, 5, 0); got != nil {
			t.Fatalf("%s: inverted x range answered %v", stage, got)
		}
		if got := sv.FourSided(geom.Rect{X1: 0, X2: span, Y1: 10, Y2: 5}); got != nil {
			t.Fatalf("%s: inverted y range answered %v", stage, got)
		}
	}
	check("at pin")

	// Mutate the live engine: fresh inserts plus deletes of pinned
	// points, so live rebuilds retire spans the snapshot references.
	for _, p := range pool {
		if err := eng.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	victims := append([]geom.Point(nil), frozen[:60]...)
	if removed, err := eng.BatchDelete(victims); err != nil || removed != len(victims) {
		t.Fatalf("BatchDelete = %d, %v", removed, err)
	}
	check("after live updates")
	if eng.DeferredBlocks() == 0 {
		t.Fatal("deleting pinned points deferred no blocks — retention not holding")
	}

	sv.Release()
	sv.Release() // idempotent
	if got := eng.Retained(); got != 0 {
		t.Fatalf("Retained() = %d after release", got)
	}
	if got := eng.DeferredBlocks(); got != 0 {
		t.Fatalf("DeferredBlocks() = %d after release — spans leaked", got)
	}

	// The live engine itself was never frozen.
	live := append(append([]geom.Point(nil), frozen[60:]...), pool...)
	q := geom.TopOpen(geom.NegInf, geom.PosInf, geom.NegInf)
	samePoints(t, eng.TopOpen(q.X1, q.X2, q.Y1), geom.RangeSkyline(live, q), "live after release")
}

// TestSnapshotStaticEngine pins a static (Dynamic: false) engine: the
// per-shard Theorem 1 indexes are immutable, so the handle is the index
// itself and only the retention machinery engages.
func TestSnapshotStaticEngine(t *testing.T) {
	const n = 300
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 5200)
	geom.SortByX(pts)
	eng, err := New(Options{Machine: testCfg, Shards: 4, Dynamic: false}, pts)
	if err != nil {
		t.Fatal(err)
	}
	cuts := eng.Cuts()
	if len(cuts) == 0 {
		t.Fatal("Cuts() is empty")
	}
	for i := 1; i < len(cuts); i++ {
		if cuts[i-1] >= cuts[i] {
			t.Fatalf("Cuts() not strictly increasing: %v", cuts)
		}
	}
	v, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sv := v.(*Snapshot)
	rng := rand.New(rand.NewSource(52))
	for i := 0; i < 25; i++ {
		x1, x2, beta := randTopOpen(rng, span)
		samePoints(t, sv.TopOpen(x1, x2, beta),
			geom.RangeSkyline(pts, geom.TopOpen(x1, x2, beta)),
			fmt.Sprintf("static topopen %d", i))
	}
	sv.Release()
	if got := eng.Retained(); got != 0 {
		t.Fatalf("Retained() = %d after release", got)
	}
}

// TestSnapshotTopOnly pins a TopOnly engine: the top-open family works,
// and a 4-sided query panics exactly like the live engine's would.
func TestSnapshotTopOnly(t *testing.T) {
	pts := geom.GenUniform(200, 3200, 5300)
	geom.SortByX(pts)
	eng, err := New(Options{Machine: testCfg, Shards: 3, Dynamic: true, TopOnly: true}, pts)
	if err != nil {
		t.Fatal(err)
	}
	v, err := eng.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	sv := v.(*Snapshot)
	defer sv.Release()
	samePoints(t, sv.TopOpen(geom.NegInf, geom.PosInf, geom.NegInf),
		geom.RangeSkyline(pts, geom.TopOpen(geom.NegInf, geom.PosInf, geom.NegInf)), "toponly")
	defer func() {
		if recover() == nil {
			t.Fatal("FourSided on a TopOnly snapshot should panic")
		}
	}()
	sv.FourSided(geom.Rect{X1: 0, X2: 100, Y1: 0, Y2: 100})
}
