package shard

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/geom"
)

// TestConcurrentQueryUpdateStress runs 4 concurrent queriers against 2
// concurrent updaters (plus a stats poller) on one engine. It is the
// test the CI race job exists for: under -race it proves the shard
// mutexes and the guarded disks fence every shared access. Queriers
// check structural sanity of every answer (a linearizable snapshot
// cannot be pinned down mid-update); full answers are verified against
// the oracle once the updaters are done.
func TestConcurrentQueryUpdateStress(t *testing.T) {
	const (
		nBase      = 1200
		perUpdater = 300
		nQueriers  = 4
		nUpdaters  = 2
		queries    = 250
	)
	span := geom.Coord((nBase + nUpdaters*perUpdater) * 16)
	all := geom.GenUniform(nBase+nUpdaters*perUpdater, span, 99)
	base := append([]geom.Point(nil), all[:nBase]...)
	geom.SortByX(base)
	eng, err := New(Options{Machine: testCfg, Shards: 4, Workers: 4, Dynamic: true}, base)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	// Updaters own disjoint point pools, so general position holds no
	// matter how their operations interleave. Each inserts its whole
	// pool, then deletes the odd-indexed half.
	for u := 0; u < nUpdaters; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, p := range pool {
				if err := eng.Insert(p); err != nil {
					t.Error(err)
					return
				}
			}
			for i := 1; i < len(pool); i += 2 {
				if ok, err := eng.Delete(pool[i]); err != nil || !ok {
					t.Errorf("Delete(%v) = %t, %v", pool[i], ok, err)
					return
				}
			}
		}()
	}
	for g := 0; g < nQueriers; g++ {
		seed := int64(g)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < queries; q++ {
				x1, x2, beta := randTopOpen(rng, span)
				sky := eng.TopOpen(x1, x2, beta)
				r := geom.TopOpen(x1, x2, beta)
				for i, p := range sky {
					if !r.Contains(p) {
						t.Errorf("query %d: %v outside %v", q, p, r)
						return
					}
					if i > 0 && (sky[i-1].X >= p.X || sky[i-1].Y <= p.Y) {
						t.Errorf("query %d: not a staircase at %d: %v, %v", q, i, sky[i-1], p)
						return
					}
				}
			}
		}()
	}
	// A poller reads the atomic aggregates while everything runs.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			_ = eng.Stats()
			_ = eng.Counters()
			_ = eng.Len()
		}
	}()
	wg.Wait()

	// Quiesced: the surviving set is base + even-indexed pool points.
	ref := append([]geom.Point(nil), base...)
	for u := 0; u < nUpdaters; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		for i := 0; i < len(pool); i += 2 {
			ref = append(ref, pool[i])
		}
	}
	if eng.Len() != len(ref) {
		t.Fatalf("final Len = %d, want %d", eng.Len(), len(ref))
	}
	rng := rand.New(rand.NewSource(123))
	for q := 0; q < 40; q++ {
		x1, x2, beta := randTopOpen(rng, span)
		got := eng.TopOpen(x1, x2, beta)
		want := geom.RangeSkyline(ref, geom.TopOpen(x1, x2, beta))
		samePoints(t, got, want, "final q="+itoa(q))
	}
}

// TestConcurrentFourSidedBatchStress races 4-sided-family queriers
// against batched updaters: two goroutines BatchInsert disjoint pools
// and BatchDelete half of them back, while four queriers issue mixed
// top-open and 4-sided queries and a poller reads the aggregates. Under
// -race this proves the per-shard foursided structures and the batched
// per-shard grouping share no unfenced state. Full answers are verified
// against the oracle after quiescence.
func TestConcurrentFourSidedBatchStress(t *testing.T) {
	const (
		nBase      = 1000
		perUpdater = 300
		nQueriers  = 4
		nUpdaters  = 2
		queries    = 200
	)
	span := geom.Coord((nBase + nUpdaters*perUpdater) * 16)
	all := geom.GenUniform(nBase+nUpdaters*perUpdater, span, 131)
	base := append([]geom.Point(nil), all[:nBase]...)
	geom.SortByX(base)
	eng, err := New(Options{Machine: testCfg, Shards: 4, Workers: 4, Dynamic: true}, base)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	// Updaters batch-load disjoint pools in slices, then batch-delete
	// the odd-indexed half.
	for u := 0; u < nUpdaters; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		wg.Add(1)
		go func() {
			defer wg.Done()
			const chunk = 64
			for lo := 0; lo < len(pool); lo += chunk {
				hi := lo + chunk
				if hi > len(pool) {
					hi = len(pool)
				}
				if err := eng.BatchInsert(pool[lo:hi]); err != nil {
					t.Error(err)
					return
				}
			}
			var victims []geom.Point
			for i := 1; i < len(pool); i += 2 {
				victims = append(victims, pool[i])
			}
			got, err := eng.BatchDelete(victims)
			if err != nil || got != len(victims) {
				t.Errorf("BatchDelete = %d, %v; want %d", got, err, len(victims))
			}
		}()
	}
	for g := 0; g < nQueriers; g++ {
		seed := int64(g + 1000)
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for q := 0; q < queries; q++ {
				var r geom.Rect
				if q%2 == 0 {
					r = randFourSided(rng, span)
				} else {
					x1, x2, beta := randTopOpen(rng, span)
					r = geom.TopOpen(x1, x2, beta)
				}
				sky := eng.RangeSkyline(r)
				for i, p := range sky {
					if !r.Contains(p) {
						t.Errorf("query %d: %v outside %v", q, p, r)
						return
					}
					if i > 0 && (sky[i-1].X >= p.X || sky[i-1].Y <= p.Y) {
						t.Errorf("query %d: not a staircase at %d: %v, %v", q, i, sky[i-1], p)
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 500; i++ {
			_ = eng.Stats()
			_ = eng.Counters()
			_ = eng.Len()
		}
	}()
	wg.Wait()

	ref := append([]geom.Point(nil), base...)
	for u := 0; u < nUpdaters; u++ {
		pool := all[nBase+u*perUpdater : nBase+(u+1)*perUpdater]
		for i := 0; i < len(pool); i += 2 {
			ref = append(ref, pool[i])
		}
	}
	if eng.Len() != len(ref) {
		t.Fatalf("final Len = %d, want %d", eng.Len(), len(ref))
	}
	rng := rand.New(rand.NewSource(132))
	for q := 0; q < 40; q++ {
		fr := randFourSided(rng, span)
		samePoints(t, eng.FourSided(fr), geom.RangeSkyline(ref, fr), "final four q="+itoa(q))
		x1, x2, beta := randTopOpen(rng, span)
		samePoints(t, eng.TopOpen(x1, x2, beta),
			geom.RangeSkyline(ref, geom.TopOpen(x1, x2, beta)), "final top q="+itoa(q))
	}
}
