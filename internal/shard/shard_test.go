package shard

import (
	"math/rand"
	"strconv"
	"sync"
	"testing"

	"repro/internal/dyntop"
	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/foursided"
	"repro/internal/geom"
	"repro/internal/topopen"
)

var testCfg = emio.Config{B: 32, M: 32 * 32}

// samePoints fails the test unless got and want are identical sequences.
func samePoints(t *testing.T, got, want []geom.Point, ctx string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d points %v, want %d %v", ctx, len(got), got, len(want), want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: point %d = %v, want %v", ctx, i, got[i], want[i])
		}
	}
}

// randTopOpen draws a query mixing bounded and grounded sides.
func randTopOpen(rng *rand.Rand, span geom.Coord) (x1, x2, beta geom.Coord) {
	x1 = rng.Int63n(span)
	x2 = x1 + rng.Int63n(span/2+1)
	beta = rng.Int63n(span)
	switch rng.Intn(6) {
	case 0:
		x1 = geom.NegInf
	case 1:
		x2 = geom.PosInf
	case 2:
		beta = geom.NegInf
	case 3:
		x1, x2, beta = geom.NegInf, geom.PosInf, geom.NegInf
	}
	return x1, x2, beta
}

// TestMergeMatchesSingleDisk is the core acceptance check: the sharded
// engine must return byte-identical skylines to a single-disk dyntop tree
// over the same points, and both must match the in-memory oracle.
func TestMergeMatchesSingleDisk(t *testing.T) {
	const n = 600
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 42)
	geom.SortByX(pts)
	single := dyntop.BuildSABE(emio.NewDisk(testCfg), 0.5, pts)
	for _, shards := range []int{1, 2, 3, 8} {
		for _, workers := range []int{1, 4} {
			eng, err := New(Options{Machine: testCfg, Shards: shards, Workers: workers, Dynamic: true}, pts)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(shards*10 + workers)))
			for q := 0; q < 120; q++ {
				x1, x2, beta := randTopOpen(rng, span)
				got := eng.TopOpen(x1, x2, beta)
				want := single.Query(x1, x2, beta)
				ctx := "shards=" + itoa(shards) + " workers=" + itoa(workers) + " q=" + itoa(q)
				samePoints(t, got, want, ctx+" (vs dyntop)")
				oracle := geom.RangeSkyline(pts, geom.TopOpen(x1, x2, beta))
				samePoints(t, got, oracle, ctx+" (vs oracle)")
			}
		}
	}
}

func itoa(i int) string { return strconv.Itoa(i) }

// TestStaticEngine checks the topopen-backed engine and its rejection of
// updates.
func TestStaticEngine(t *testing.T) {
	const n = 500
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 7)
	geom.SortByX(pts)
	d := emio.NewDisk(testCfg)
	f := extsort.FromSlice(d, 2, pts)
	single := topopen.Build(d, f)
	eng, err := New(Options{Machine: testCfg, Shards: 4, Dynamic: false}, pts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for q := 0; q < 100; q++ {
		x1, x2, beta := randTopOpen(rng, span)
		samePoints(t, eng.TopOpen(x1, x2, beta), single.Query(x1, x2, beta), "static q="+itoa(q))
	}
	if err := eng.Insert(geom.Point{X: -1, Y: -1}); err == nil {
		t.Fatal("Insert on static engine did not fail")
	}
	if _, err := eng.Delete(pts[0]); err == nil {
		t.Fatal("Delete on static engine did not fail")
	}
}

// TestUpdatesThenQueries interleaves routed inserts/deletes with queries,
// cross-checking against the oracle over a reference slice.
func TestUpdatesThenQueries(t *testing.T) {
	const n, extra = 400, 400
	span := geom.Coord((n + extra) * 16)
	all := geom.GenUniform(n+extra, span, 11)
	base := append([]geom.Point(nil), all[:n]...)
	pool := all[n:]
	geom.SortByX(base)
	eng, err := New(Options{Machine: testCfg, Shards: 4, Workers: 4, Dynamic: true}, base)
	if err != nil {
		t.Fatal(err)
	}
	ref := append([]geom.Point(nil), base...)
	rng := rand.New(rand.NewSource(13))
	for round := 0; round < 30; round++ {
		// A few routed single-point updates.
		for i := 0; i < 8 && len(pool) > 0; i++ {
			if rng.Intn(3) != 0 || len(ref) == 0 {
				p := pool[len(pool)-1]
				pool = pool[:len(pool)-1]
				if err := eng.Insert(p); err != nil {
					t.Fatal(err)
				}
				ref = append(ref, p)
			} else {
				j := rng.Intn(len(ref))
				p := ref[j]
				ok, err := eng.Delete(p)
				if err != nil || !ok {
					t.Fatalf("Delete(%v) = %t, %v", p, ok, err)
				}
				ref = append(ref[:j], ref[j+1:]...)
			}
		}
		if eng.Len() != len(ref) {
			t.Fatalf("round %d: Len = %d, want %d", round, eng.Len(), len(ref))
		}
		for q := 0; q < 5; q++ {
			x1, x2, beta := randTopOpen(rng, span)
			got := eng.TopOpen(x1, x2, beta)
			want := geom.RangeSkyline(ref, geom.TopOpen(x1, x2, beta))
			samePoints(t, got, want, "round="+itoa(round)+" q="+itoa(q))
		}
	}
	// Deleting an absent point reports false without error.
	if ok, err := eng.Delete(geom.Point{X: span + 1, Y: span + 1}); err != nil || ok {
		t.Fatalf("Delete(absent) = %t, %v", ok, err)
	}
}

// TestBatchInsert loads points in one batch and checks queries and Len.
func TestBatchInsert(t *testing.T) {
	const n, batch = 300, 500
	span := geom.Coord((n + batch) * 16)
	all := geom.GenUniform(n+batch, span, 17)
	base := append([]geom.Point(nil), all[:n]...)
	geom.SortByX(base)
	eng, err := New(Options{Machine: testCfg, Shards: 4, Workers: 2, Dynamic: true}, base)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.BatchInsert(all[n:]); err != nil {
		t.Fatal(err)
	}
	if eng.Len() != n+batch {
		t.Fatalf("Len = %d, want %d", eng.Len(), n+batch)
	}
	samePoints(t, eng.Skyline(), geom.Skyline(all), "post-batch skyline")
}

// TestCountersAndStats checks the atomic engine-level aggregates.
func TestCountersAndStats(t *testing.T) {
	pts := geom.GenUniform(200, 4000, 23)
	geom.SortByX(pts)
	eng, err := New(Options{Machine: testCfg, Shards: 3, Dynamic: true}, pts)
	if err != nil {
		t.Fatal(err)
	}
	eng.ResetStats()
	for i := 0; i < eng.NumShards(); i++ {
		eng.ShardDisk(i).DropCache()
	}
	k := len(eng.Skyline())
	if err := eng.Insert(geom.Point{X: 4001, Y: 4001}); err != nil {
		t.Fatal(err)
	}
	c := eng.Counters()
	if c.Queries != 1 || c.Updates != 1 || c.Points != uint64(k) {
		t.Fatalf("Counters = %+v, want {1, 1, %d}", c, k)
	}
	if eng.Stats().IOs() == 0 {
		t.Fatal("aggregated stats report zero I/Os after query+insert")
	}
	eng.ResetStats()
	if eng.Stats().IOs() != 0 {
		t.Fatalf("ResetStats left %v", eng.Stats())
	}
	if eng.NumShards() != 3 || !eng.Dynamic() {
		t.Fatalf("NumShards/Dynamic = %d/%t", eng.NumShards(), eng.Dynamic())
	}
}

// TestSmallInputs covers more shards than points, including empty.
func TestSmallInputs(t *testing.T) {
	for _, n := range []int{0, 1, 3, 5} {
		pts := geom.GenUniform(n, 1000, int64(n)+31)
		geom.SortByX(pts)
		eng, err := New(Options{Machine: testCfg, Shards: 4, Dynamic: true}, pts)
		if err != nil {
			t.Fatal(err)
		}
		samePoints(t, eng.Skyline(), geom.Skyline(pts), "n="+itoa(n))
		if got := eng.TopOpen(10, 5, geom.NegInf); got != nil {
			t.Fatalf("inverted range returned %v", got)
		}
	}
}

// TestUnsortedRejected checks the input contract.
func TestUnsortedRejected(t *testing.T) {
	if _, err := New(Options{Machine: testCfg}, []geom.Point{{X: 5, Y: 1}, {X: 3, Y: 2}}); err == nil {
		t.Fatal("unsorted input accepted")
	}
	if _, err := New(Options{Machine: testCfg, Epsilon: 2}, nil); err == nil {
		t.Fatal("epsilon out of range accepted")
	}
}

// randFourSided draws a rectangle from the 4-sided family: bounded top
// edge, other sides bounded or grounded.
func randFourSided(rng *rand.Rand, span geom.Coord) geom.Rect {
	x1 := rng.Int63n(span)
	y1 := rng.Int63n(span)
	r := geom.Rect{X1: x1, X2: x1 + rng.Int63n(span/2+1), Y1: y1, Y2: y1 + rng.Int63n(span/2+1)}
	switch rng.Intn(6) {
	case 0:
		r.X1 = geom.NegInf // left-open
	case 1:
		r.Y1 = geom.NegInf // bottom-open
	case 2:
		r.X2 = geom.PosInf // right-open
	case 3:
		r.X1, r.Y1 = geom.NegInf, geom.NegInf // anti-dominance
	}
	return r
}

// TestFourSidedMatchesSingleDisk is the 4-sided acceptance check: the
// sharded engine must return byte-identical answers to a single-disk
// foursided.Index over the same points, for every shard/worker split.
func TestFourSidedMatchesSingleDisk(t *testing.T) {
	const n = 600
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 63)
	geom.SortByX(pts)
	single := foursided.Build(emio.NewDisk(testCfg), 0.5, pts)
	for _, shards := range []int{1, 2, 3, 8} {
		for _, workers := range []int{1, 4} {
			eng, err := New(Options{Machine: testCfg, Shards: shards, Workers: workers, Dynamic: true}, pts)
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(shards*100 + workers)))
			for q := 0; q < 120; q++ {
				r := randFourSided(rng, span)
				got := eng.FourSided(r)
				want := single.Query(r)
				ctx := "shards=" + itoa(shards) + " workers=" + itoa(workers) + " q=" + itoa(q)
				samePoints(t, got, want, ctx+" (vs foursided)")
				samePoints(t, got, geom.RangeSkyline(pts, r), ctx+" (vs oracle)")
			}
		}
	}
}

// TestRangeSkylineRouting checks that RangeSkyline serves both families
// (it used to panic on bounded-top rectangles).
func TestRangeSkylineRouting(t *testing.T) {
	const n = 300
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 71)
	geom.SortByX(pts)
	eng, err := New(Options{Machine: testCfg, Shards: 4, Dynamic: true}, pts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(72))
	for q := 0; q < 60; q++ {
		var r geom.Rect
		if q%2 == 0 {
			x1, x2, beta := randTopOpen(rng, span)
			r = geom.TopOpen(x1, x2, beta)
		} else {
			r = randFourSided(rng, span)
		}
		samePoints(t, eng.RangeSkyline(r), geom.RangeSkyline(pts, r), "q="+itoa(q))
	}
	// Degenerate y-range on the 4-sided path.
	if got := eng.FourSided(geom.Rect{X1: 0, X2: span, Y1: 10, Y2: 5}); got != nil {
		t.Fatalf("inverted y-range returned %v", got)
	}
}

// TestStaticFourSided: a static engine still answers the 4-sided family
// but rejects batched updates.
func TestStaticFourSided(t *testing.T) {
	const n = 400
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 77)
	geom.SortByX(pts)
	eng, err := New(Options{Machine: testCfg, Shards: 4, Dynamic: false}, pts)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(78))
	for q := 0; q < 60; q++ {
		r := randFourSided(rng, span)
		samePoints(t, eng.FourSided(r), geom.RangeSkyline(pts, r), "static q="+itoa(q))
	}
	if err := eng.BatchInsert(pts[:2]); err == nil {
		t.Fatal("BatchInsert on static engine did not fail")
	}
	if _, err := eng.BatchDelete(pts[:2]); err == nil {
		t.Fatal("BatchDelete on static engine did not fail")
	}
}

// TestBatchDelete removes a batch spanning every shard plus some absent
// points, and cross-checks both families afterwards.
func TestBatchDelete(t *testing.T) {
	const n = 600
	span := geom.Coord(n * 16)
	pts := geom.GenUniform(n, span, 81)
	geom.SortByX(pts)
	eng, err := New(Options{Machine: testCfg, Shards: 4, Workers: 4, Dynamic: true}, pts)
	if err != nil {
		t.Fatal(err)
	}
	// Delete every third point, plus points that were never inserted.
	var batch, ref []geom.Point
	for i, p := range pts {
		if i%3 == 0 {
			batch = append(batch, p)
		} else {
			ref = append(ref, p)
		}
	}
	absent := []geom.Point{{X: span + 10, Y: span + 10}, {X: span + 20, Y: span + 20}}
	removed, err := eng.BatchDelete(append(append([]geom.Point(nil), batch...), absent...))
	if err != nil {
		t.Fatal(err)
	}
	if removed != len(batch) {
		t.Fatalf("BatchDelete removed %d, want %d", removed, len(batch))
	}
	if eng.Len() != len(ref) {
		t.Fatalf("Len = %d, want %d", eng.Len(), len(ref))
	}
	if got := eng.Counters().Updates; got != uint64(len(batch)) {
		t.Fatalf("Updates counter = %d, want %d (misses must not count)", got, len(batch))
	}
	rng := rand.New(rand.NewSource(82))
	for q := 0; q < 40; q++ {
		x1, x2, beta := randTopOpen(rng, span)
		samePoints(t, eng.TopOpen(x1, x2, beta),
			geom.RangeSkyline(ref, geom.TopOpen(x1, x2, beta)), "top q="+itoa(q))
		r := randFourSided(rng, span)
		samePoints(t, eng.FourSided(r), geom.RangeSkyline(ref, r), "four q="+itoa(q))
	}
}

func TestMergeSkylines(t *testing.T) {
	p := func(x, y geom.Coord) geom.Point { return geom.Point{X: x, Y: y} }
	got := mergeSkylines([][]geom.Point{
		{p(1, 50), p(2, 40), p(3, 10)}, // p(3,10) dominated by p(11,30)
		nil,
		{p(11, 30), p(12, 5)}, // p(12,5) dominated by p(21,20)
		{p(21, 20)},
	})
	want := []geom.Point{p(1, 50), p(2, 40), p(11, 30), p(21, 20)}
	samePoints(t, got, want, "merge")
	if mergeSkylines(nil) != nil || mergeSkylines([][]geom.Point{nil, nil}) != nil {
		t.Fatal("empty merge not nil")
	}
}

// TestTopOnlyEngine pins the mirror configuration: a TopOnly engine
// answers the top-open family identically to a full engine (with and
// without updates), skips building the per-shard Theorem 6 structures,
// and panics on 4-sided-family rectangles instead of silently serving
// them wrong.
func TestTopOnlyEngine(t *testing.T) {
	const n = 400
	span := geom.Coord(n * 16)
	all := geom.GenUniform(n+100, span, 701)
	pts := append([]geom.Point(nil), all[:n]...)
	pool := all[n:]
	geom.SortByX(pts)
	topOnly, err := New(Options{Machine: testCfg, Shards: 4, Workers: 2, Dynamic: true, TopOnly: true}, pts)
	if err != nil {
		t.Fatal(err)
	}
	full, err := New(Options{Machine: testCfg, Shards: 4, Workers: 2, Dynamic: true}, pts)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range topOnly.shards {
		if s.four != nil {
			t.Fatal("TopOnly engine built a foursided structure")
		}
	}
	rng := rand.New(rand.NewSource(702))
	check := func(ctx string) {
		for q := 0; q < 40; q++ {
			x1, x2, beta := randTopOpen(rng, span)
			samePoints(t, topOnly.TopOpen(x1, x2, beta), full.TopOpen(x1, x2, beta),
				ctx+" q="+itoa(q))
		}
	}
	check("static")
	for _, p := range pool[:50] {
		if err := topOnly.Insert(p); err != nil {
			t.Fatal(err)
		}
		if err := full.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := topOnly.BatchInsert(pool[50:]); err != nil {
		t.Fatal(err)
	}
	if err := full.BatchInsert(pool[50:]); err != nil {
		t.Fatal(err)
	}
	check("after inserts")
	var victims []geom.Point
	for i := 0; i < len(pool); i += 2 {
		victims = append(victims, pool[i])
	}
	got, err := topOnly.BatchDelete(victims)
	if err != nil || got != len(victims) {
		t.Fatalf("TopOnly BatchDelete = %d, %v; want %d", got, err, len(victims))
	}
	if got, err := full.BatchDelete(victims); err != nil || got != len(victims) {
		t.Fatalf("full BatchDelete = %d, %v; want %d", got, err, len(victims))
	}
	check("after deletes")

	defer func() {
		if recover() == nil {
			t.Fatal("FourSided on a TopOnly engine did not panic")
		}
	}()
	topOnly.FourSided(geom.Rect{X1: 1, X2: 100, Y1: 1, Y2: 100})
}

// TestQuiesce pins the shutdown barrier core.DB.Close relies on: after
// Quiesce returns, every worker-pool task submitted before it has fully
// applied (no goroutine still holds a semaphore slot or a shard mutex),
// so the engine's state is at rest and countable. It must also be a
// cheap no-op on an idle engine and safe to call repeatedly.
func TestQuiesce(t *testing.T) {
	pts := geom.GenUniform(600, 600*16, 8101)
	geom.SortByX(pts)
	base := pts[:400]
	extra := pts[400:]
	eng, err := New(Options{Machine: emio.Config{B: 32, M: 32 * 32}, Shards: 4, Workers: 4, Dynamic: true}, base)
	if err != nil {
		t.Fatal(err)
	}
	eng.Quiesce() // idle: returns immediately
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := eng.BatchInsert(extra); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait() // the batch call has returned; its tasks may have run pooled
	eng.Quiesce()
	eng.Quiesce() // idempotent
	if eng.Len() != len(pts) {
		t.Fatalf("Len after quiesce = %d, want %d", eng.Len(), len(pts))
	}
}
