// Package load generates skylined workloads and measures what came
// back. It is the engine room shared by cmd/skyload (the standalone
// load generator) and skybench's E19 (the serving-tier experiment):
// both run the same seeded op stream through the same HTTP client, so
// the numbers CI gates and the numbers an operator measures by hand
// are the same code path.
//
// A workload is a deterministic function of its Config: inserts pop
// from a pre-generated general-position pool (geom.GenUniform — the
// engine requires distinct coordinates, so write keys cannot be
// skewed), deletes target earlier acknowledged inserts, and queries
// draw their shape and anchor from the seeded RNG with optional Zipf
// skew over the x-axis — hot-spot READS, unique-key WRITES, the usual
// serving-tier shape.
//
// Two kinds of numbers come out:
//
//   - wall-clock latency percentiles and achieved QPS — host-dependent,
//     reported but never gated;
//   - simulated-I/O-cost percentiles per query (the "ios" field the
//     server returns when it runs with measure_io) — deterministic for
//     a seeded closed-loop run at concurrency 1, so CI gates them.
package load

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"time"

	"repro/internal/geom"
)

// Config fixes a workload. Every field with a zero default is usable
// as-is; see cmd/skyload for the flag spelling of each.
type Config struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8787".
	BaseURL string
	// Namespace is the tenant every op targets.
	Namespace string
	// Ops is the total operation count.
	Ops int
	// Conc is the closed-loop concurrency (workers issuing
	// back-to-back requests). 1 — the default — is fully
	// deterministic.
	Conc int
	// TargetQPS > 0 switches to an open loop: arrivals are scheduled
	// at the target rate regardless of completions, so queueing delay
	// shows up in the latency tail instead of hiding in a slowed
	// arrival stream (coordinated omission).
	TargetQPS float64
	// ReadFrac in [0,1] is the fraction of ops that are queries; the
	// rest are writes, split 3:1 insert:delete.
	ReadFrac float64
	// ZipfS > 1 skews query anchors toward low x with a Zipf(s)
	// distribution over Span buckets; 0 means uniform.
	ZipfS float64
	// Span is the coordinate universe [0, Span)²; zero means 1<<20.
	Span int64
	// Seed fixes the op stream.
	Seed int64
	// Client overrides the HTTP client (nil: a fresh one, no timeout).
	Client *http.Client
}

// Result is what one Run measured.
type Result struct {
	Ops, Reads, Inserts, Deletes int
	// Errors counts non-2xx responses and transport failures;
	// Backpressure counts the 429 subset (retried, not failed).
	Errors, Backpressure int
	// Acked are the insert points the server acknowledged with 200 and
	// DelAcked the delete points — after a graceful shutdown and a
	// reopen, Acked minus DelAcked must all be present (the zero-
	// lost-acks invariant E19 and the server tests assert).
	Acked, DelAcked []geom.Point
	// Wall holds one end-to-end latency per completed op; under an
	// open loop it is measured from the op's SCHEDULED start.
	Wall []time.Duration
	// IOs holds one simulated-I/O cost per query, when the server
	// measures them (measure_io); empty otherwise.
	IOs []uint64
	// Elapsed is the whole run's wall time.
	Elapsed time.Duration
}

// QPS is the achieved throughput.
func (r *Result) QPS() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// WallPercentile returns the p-th (0 < p <= 100) wall-latency
// percentile.
func (r *Result) WallPercentile(p float64) time.Duration {
	if len(r.Wall) == 0 {
		return 0
	}
	s := append([]time.Duration(nil), r.Wall...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[pctIndex(p, len(s))]
}

// IOPercentile returns the p-th percentile of per-query simulated I/O
// cost.
func (r *Result) IOPercentile(p float64) uint64 {
	if len(r.IOs) == 0 {
		return 0
	}
	s := append([]uint64(nil), r.IOs...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[pctIndex(p, len(s))]
}

// pctIndex is the nearest-rank index of percentile p in n samples.
func pctIndex(p float64, n int) int {
	i := int(p/100*float64(n)+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= n {
		i = n - 1
	}
	return i
}

// op is one scheduled operation.
type op struct {
	kind  byte // 'q', 'i', 'd'
	pt    geom.Point
	shape string
	req   map[string]any
}

// shapes are the read mix: every Figure-2 shape plus the whole-set
// skyline, uniformly.
var shapes = []string{
	"top-open", "right-open", "bottom-open", "left-open",
	"dominance", "anti-dominance", "contour", "skyline",
}

// plan expands cfg into its deterministic op stream.
func plan(cfg Config) []op {
	span := cfg.Span
	if span <= 0 {
		span = 1 << 20
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(span-1))
	}
	anchor := func() geom.Coord {
		if zipf != nil {
			return geom.Coord(zipf.Uint64())
		}
		return geom.Coord(rng.Int63n(span))
	}
	// The insert pool: every op could be an insert, so size for all of
	// them. GenUniform keeps general position within the pool; live
	// deletes keep the server's set a subset of it.
	pool := geom.GenUniform(cfg.Ops, geom.Coord(span), cfg.Seed+1)
	nextIns := 0
	var live []geom.Point

	ops := make([]op, cfg.Ops)
	for i := range ops {
		if rng.Float64() < cfg.ReadFrac {
			shape := shapes[rng.Intn(len(shapes))]
			a, b := anchor(), anchor()
			if a > b {
				a, b = b, a
			}
			c := anchor()
			req := map[string]any{"shape": shape}
			switch shape {
			case "top-open":
				req["x1"], req["x2"], req["beta"] = a, b, c
			case "bottom-open":
				req["x1"], req["x2"], req["y"] = a, b, c
			case "right-open", "left-open":
				req["x"], req["y1"], req["y2"] = c, a, b
			case "dominance", "anti-dominance":
				req["x"], req["y"] = a, c
			case "contour":
				req["x"] = a
			case "skyline":
			}
			ops[i] = op{kind: 'q', shape: shape, req: req}
			continue
		}
		// Writes: 3:1 insert:delete, deletes drawn from the live set.
		if len(live) > 0 && rng.Intn(4) == 0 {
			j := rng.Intn(len(live))
			ops[i] = op{kind: 'd', pt: live[j]}
			live[j] = live[len(live)-1]
			live = live[:len(live)-1]
			continue
		}
		p := pool[nextIns]
		nextIns++
		ops[i] = op{kind: 'i', pt: p}
		live = append(live, p)
	}
	return ops
}

// Client is a minimal skylined wire client.
type Client struct {
	Base string
	NS   string
	HTTP *http.Client
}

func (c *Client) post(path string, body, out any) (int, error) {
	blob, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := c.HTTP.Post(c.Base+"/v1/"+c.NS+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close() //errlint:ok read-side close of a fully drained response
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(raw))
	}
	if out != nil {
		return resp.StatusCode, json.Unmarshal(raw, out)
	}
	return resp.StatusCode, nil
}

// Query runs one query request body and returns the response.
func (c *Client) Query(req map[string]any) (pts []geom.Point, ios *uint64, status int, err error) {
	var resp struct {
		Points []struct {
			X geom.Coord `json:"x"`
			Y geom.Coord `json:"y"`
		} `json:"points"`
		IOs *uint64 `json:"ios"`
	}
	status, err = c.post("/query", req, &resp)
	if err != nil {
		return nil, nil, status, err
	}
	pts = make([]geom.Point, len(resp.Points))
	for i, p := range resp.Points {
		pts[i] = geom.Point{X: p.X, Y: p.Y}
	}
	return pts, resp.IOs, status, nil
}

// Insert inserts one point.
func (c *Client) Insert(p geom.Point) (int, error) {
	return c.post("/insert", map[string]any{"point": map[string]geom.Coord{"x": p.X, "y": p.Y}}, nil)
}

// Delete deletes one point.
func (c *Client) Delete(p geom.Point) (int, error) {
	return c.post("/delete", map[string]any{"point": map[string]geom.Coord{"x": p.X, "y": p.Y}}, nil)
}

// Run executes the workload and returns its measurements. With
// Conc <= 1 and no TargetQPS the run is closed-loop single-threaded:
// op order, and therefore every simulated-I/O cost, is deterministic.
func Run(cfg Config) (*Result, error) {
	if cfg.Ops <= 0 {
		return nil, fmt.Errorf("load: Ops must be positive")
	}
	conc := cfg.Conc
	if conc < 1 {
		conc = 1
	}
	hc := cfg.Client
	if hc == nil {
		hc = &http.Client{}
	}
	client := &Client{Base: cfg.BaseURL, NS: cfg.Namespace, HTTP: hc}
	ops := plan(cfg)

	type sample struct {
		op      op
		wall    time.Duration
		ios     *uint64
		status  int
		err     error
		started bool
	}
	samples := make([]sample, len(ops))

	// Open loop: precompute each op's scheduled start offset.
	var sched []time.Duration
	if cfg.TargetQPS > 0 {
		sched = make([]time.Duration, len(ops))
		per := time.Duration(float64(time.Second) / cfg.TargetQPS)
		for i := range sched {
			sched[i] = time.Duration(i) * per
		}
	}

	start := time.Now()
	next := make(chan int, conc)
	go func() {
		for i := range ops {
			if sched != nil {
				if d := time.Until(start.Add(sched[i])); d > 0 {
					time.Sleep(d)
				}
			}
			next <- i
		}
		close(next)
	}()
	done := make(chan struct{}, conc)
	for w := 0; w < conc; w++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := range next {
				o := ops[i]
				t0 := time.Now()
				if sched != nil {
					// Open loop measures from the scheduled start, so
					// time spent queued behind slow completions counts.
					t0 = start.Add(sched[i])
				}
				s := &samples[i]
				s.op, s.started = o, true
				switch o.kind {
				case 'q':
					_, s.ios, s.status, s.err = client.Query(o.req)
				case 'i':
					s.status, s.err = client.Insert(o.pt)
				case 'd':
					s.status, s.err = client.Delete(o.pt)
				}
				s.wall = time.Since(t0)
			}
		}()
	}
	for w := 0; w < conc; w++ {
		<-done
	}

	res := &Result{Elapsed: time.Since(start)}
	for i := range samples {
		s := &samples[i]
		if !s.started {
			continue
		}
		res.Ops++
		res.Wall = append(res.Wall, s.wall)
		if s.err != nil {
			if s.status == http.StatusTooManyRequests {
				res.Backpressure++
			} else {
				res.Errors++
			}
			continue
		}
		switch s.op.kind {
		case 'q':
			res.Reads++
			if s.ios != nil {
				res.IOs = append(res.IOs, *s.ios)
			}
		case 'i':
			res.Inserts++
			res.Acked = append(res.Acked, s.op.pt)
		case 'd':
			res.Deletes++
			res.DelAcked = append(res.DelAcked, s.op.pt)
		}
	}
	return res, nil
}

// Expected returns the point set a server must hold after every
// acknowledged op in r is applied: acknowledged inserts minus
// acknowledged deletes. The zero-lost-acks checks diff this against
// the reopened index.
func (r *Result) Expected() map[geom.Point]bool {
	want := make(map[geom.Point]bool, len(r.Acked))
	for _, p := range r.Acked {
		want[p] = true
	}
	for _, p := range r.DelAcked {
		delete(want, p)
	}
	return want
}

// WriteCSV writes one row per completed op class to path: the artifact
// cmd/skyload leaves behind for offline analysis.
func (r *Result) WriteCSV(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := csv.NewWriter(f)
	rows := [][]string{
		{"metric", "value"},
		{"ops", strconv.Itoa(r.Ops)},
		{"reads", strconv.Itoa(r.Reads)},
		{"inserts", strconv.Itoa(r.Inserts)},
		{"deletes", strconv.Itoa(r.Deletes)},
		{"errors", strconv.Itoa(r.Errors)},
		{"backpressure_429", strconv.Itoa(r.Backpressure)},
		{"elapsed_s", fmt.Sprintf("%.3f", r.Elapsed.Seconds())},
		{"qps", fmt.Sprintf("%.1f", r.QPS())},
		{"wall_p50_us", strconv.FormatInt(r.WallPercentile(50).Microseconds(), 10)},
		{"wall_p99_us", strconv.FormatInt(r.WallPercentile(99).Microseconds(), 10)},
		{"wall_p999_us", strconv.FormatInt(r.WallPercentile(99.9).Microseconds(), 10)},
		{"io_p50", strconv.FormatUint(r.IOPercentile(50), 10)},
		{"io_p99", strconv.FormatUint(r.IOPercentile(99), 10)},
		{"io_p999", strconv.FormatUint(r.IOPercentile(99.9), 10)},
	}
	if err := w.WriteAll(rows); err != nil {
		f.Close() //errlint:ok write error already reported
		return err
	}
	return f.Close()
}
