package topopen

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/geom"
)

func pt(x, y geom.Coord) geom.Point { return geom.Point{X: x, Y: y} }

func buildIndex(t testing.TB, cfg emio.Config, pts []geom.Point) (*emio.Disk, *Index) {
	t.Helper()
	d := emio.NewDisk(cfg)
	sorted := append([]geom.Point(nil), pts...)
	geom.SortByX(sorted)
	f := extsort.FromSlice(d, 2, sorted)
	return d, Build(d, f)
}

func sameAnswer(got, want []geom.Point) bool {
	if len(got) == 0 && len(want) == 0 {
		return true
	}
	return reflect.DeepEqual(got, want)
}

func TestQueryMatchesOracle(t *testing.T) {
	pts := geom.GenUniform(500, 5000, 31)
	d, ix := buildIndex(t, emio.Config{B: 32, M: 32 * 8}, pts)
	_ = d
	rng := rand.New(rand.NewSource(32))
	for q := 0; q < 300; q++ {
		x1 := geom.Coord(rng.Int63n(5500)) - 250
		x2 := x1 + geom.Coord(rng.Int63n(3000))
		beta := geom.Coord(rng.Int63n(5500)) - 250
		got := ix.Query(x1, x2, beta)
		want := geom.RangeSkyline(pts, geom.TopOpen(x1, x2, beta))
		if !sameAnswer(got, want) {
			t.Fatalf("Query(%d,%d,%d) = %v, want %v", x1, x2, beta, got, want)
		}
	}
}

func TestQueryVariants(t *testing.T) {
	pts := geom.GenUniform(300, 3000, 41)
	_, ix := buildIndex(t, emio.Config{B: 16, M: 16 * 8}, pts)
	rng := rand.New(rand.NewSource(42))
	for q := 0; q < 100; q++ {
		x := geom.Coord(rng.Int63n(3300)) - 150
		y := geom.Coord(rng.Int63n(3300)) - 150
		if got, want := ix.Dominance(x, y), geom.RangeSkyline(pts, geom.Dominance(x, y)); !sameAnswer(got, want) {
			t.Fatalf("Dominance(%d,%d) = %v, want %v", x, y, got, want)
		}
		if got, want := ix.Contour(x), geom.RangeSkyline(pts, geom.Contour(x)); !sameAnswer(got, want) {
			t.Fatalf("Contour(%d) = %v, want %v", x, got, want)
		}
	}
}

func TestQueryOpenEdges(t *testing.T) {
	pts := geom.GenUniform(200, 2000, 51)
	_, ix := buildIndex(t, emio.Config{B: 16, M: 16 * 8}, pts)
	got := ix.Query(geom.NegInf, geom.PosInf, geom.NegInf)
	want := geom.Skyline(pts)
	if !sameAnswer(got, want) {
		t.Fatalf("full-plane query = %v, want skyline %v", got, want)
	}
}

func TestEmptyIndex(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 16, M: 256})
	ix := Build(d, extsort.NewFile[geom.Point](d, 2))
	if got := ix.Query(0, 10, 0); got != nil {
		t.Fatalf("empty index returned %v", got)
	}
}

func TestSinglePoint(t *testing.T) {
	d := emio.NewDisk(emio.Config{B: 16, M: 256})
	f := extsort.FromSlice(d, 2, []geom.Point{pt(5, 7)})
	ix := Build(d, f)
	if got := ix.Query(0, 10, 0); len(got) != 1 || got[0] != pt(5, 7) {
		t.Fatalf("Query = %v", got)
	}
	if got := ix.Query(0, 10, 8); got != nil {
		t.Fatalf("Query above point = %v", got)
	}
	if got := ix.Query(6, 10, 0); got != nil {
		t.Fatalf("Query right of point = %v", got)
	}
}

func TestQuickMatchesOracle(t *testing.T) {
	f := func(raw []int16, q1, q2, qb int16) bool {
		var pts []geom.Point
		seenX := map[geom.Coord]bool{}
		seenY := map[geom.Coord]bool{}
		for i := 0; i+1 < len(raw); i += 2 {
			p := pt(geom.Coord(raw[i]), geom.Coord(raw[i+1]))
			if seenX[p.X] || seenY[p.Y] {
				continue
			}
			seenX[p.X], seenY[p.Y] = true, true
			pts = append(pts, p)
		}
		d := emio.NewDisk(emio.Config{B: 16, M: 16 * 6})
		sorted := append([]geom.Point(nil), pts...)
		geom.SortByX(sorted)
		ix := Build(d, extsort.FromSlice(d, 2, sorted))
		x1, x2 := geom.Coord(q1), geom.Coord(q2)
		if x1 > x2 {
			x1, x2 = x2, x1
		}
		got := ix.Query(x1, x2, geom.Coord(qb))
		want := geom.RangeSkyline(pts, geom.TopOpen(x1, x2, geom.Coord(qb)))
		return sameAnswer(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQueryIOBound: Theorem 1's O(log_B n + k/B) with explicit constants.
func TestQueryIOBound(t *testing.T) {
	cfg := emio.Config{B: 64, M: 64 * 8}
	n := 30000
	pts := geom.GenStaircase(n, 71)
	d, ix := buildIndex(t, cfg, pts)
	logB := 1
	for m := n; m > 1; m = m / (cfg.B / 4) {
		logB++
	}
	rng := rand.New(rand.NewSource(72))
	for q := 0; q < 40; q++ {
		x1 := geom.Coord(rng.Int63n(int64(n) * 2))
		x2 := x1 + geom.Coord(rng.Int63n(int64(n)))
		beta := geom.Coord(rng.Int63n(int64(n) * 2))
		var res []geom.Point
		st := d.Measure(func() { res = ix.Query(x1, x2, beta) })
		budget := float64(8*logB) + 10 + 20*float64(len(res))/float64(cfg.B)
		if float64(st.IOs()) > budget {
			t.Errorf("query k=%d cost %d I/Os, budget %.0f", len(res), st.IOs(), budget)
		}
	}
}

// TestSABEBuildLinear: Theorem 1's build claim.
func TestSABEBuildLinear(t *testing.T) {
	cfg := emio.Config{B: 32, M: 32 * 16}
	d := emio.NewDisk(cfg)
	n := 20000
	pts := geom.GenUniform(n, int64(n)*8, 73)
	geom.SortByX(pts)
	f := extsort.FromSlice(d, 2, pts)
	d.DropCache()
	d.ResetStats()
	ix := Build(d, f)
	d.DropCache()
	st := d.Stats()
	nb := float64(n) / float64(cfg.B)
	if float64(st.IOs()) > 40*nb+60 {
		t.Errorf("build cost %d I/Os, budget %.0f", st.IOs(), 40*nb+60)
	}
	// Linear space.
	if words := ix.SpaceWords(); words > 40*n {
		t.Errorf("index uses %d words for %d points", words, n)
	}
	ix.Free()
}

func TestRightOpenMatchesOracle(t *testing.T) {
	pts := geom.GenUniform(400, 4000, 81)
	d := emio.NewDisk(emio.Config{B: 32, M: 32 * 8})
	sorted := append([]geom.Point(nil), pts...)
	geom.SortByX(sorted)
	f := extsort.FromSlice(d, 2, sorted)
	ro := BuildRightOpen(d, f)
	rng := rand.New(rand.NewSource(82))
	for q := 0; q < 200; q++ {
		x := geom.Coord(rng.Int63n(4400)) - 200
		y1 := geom.Coord(rng.Int63n(4400)) - 200
		y2 := y1 + geom.Coord(rng.Int63n(2500))
		got := ro.Query(x, y1, y2)
		want := geom.RangeSkyline(pts, geom.RightOpen(x, y1, y2))
		if !sameAnswer(got, want) {
			t.Fatalf("RightOpen(%d,%d,%d) = %v, want %v", x, y1, y2, got, want)
		}
	}
}

func TestRightOpenFullBand(t *testing.T) {
	pts := geom.GenUniform(200, 2000, 83)
	d := emio.NewDisk(emio.Config{B: 16, M: 16 * 8})
	sorted := append([]geom.Point(nil), pts...)
	geom.SortByX(sorted)
	ro := BuildRightOpen(d, extsort.FromSlice(d, 2, sorted))
	// The Theorem 6 inner query shape: (-∞,∞) x-range, y band.
	got := ro.Query(geom.NegInf, 500, 1500)
	want := geom.RangeSkyline(pts, geom.Rect{X1: geom.NegInf, X2: geom.PosInf, Y1: 500, Y2: 1500})
	if !sameAnswer(got, want) {
		t.Fatalf("full-band right-open = %v, want %v", got, want)
	}
}
