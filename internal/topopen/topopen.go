// Package topopen implements Theorem 1: an indivisible linear-size static
// structure answering top-open range skyline queries in
// O(log_B n + k/B) I/Os, built in O(n/B) I/Os from x-sorted input (SABE).
//
// The structure is the §2.1 reduction: a range-max B-tree over the
// x-coordinates finds β′, the highest y-coordinate inside the query
// rectangle; the skyline of P ∩ Q is then exactly the set of segments of
// Σ(P) that intersect the vertical segment α2 × [β, β′], retrieved from a
// partially persistent B-tree (Lemma 1).
//
// Top-open queries subsume dominance and contour queries (§1.3), and
// right-open queries reduce to top-open by swapping the coordinate axes;
// the package provides all four entry points.
package topopen

import (
	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/geom"
	"repro/internal/ppb"
	"repro/internal/statbtree"
)

// Index is the static top-open range skyline structure of Theorem 1.
type Index struct {
	disk *emio.Disk
	xmax *statbtree.Tree // range-max over x: Key = x, Val = y
	segs *ppb.Tree       // PPB-tree over Σ(P)
	n    int
	maxX geom.Coord // largest indexed x; +∞ query edges clamp here
}

// Build constructs the index over pts, which must be sorted by x and in
// general position. Cost: O(n/B) I/Os (the SABE property of Theorem 1).
// The input file is preserved.
func Build(d *emio.Disk, pts *extsort.File[geom.Point]) *Index {
	return buildMode(d, pts, ppb.SABE)
}

// BuildClassic is Build with the generic O(n log_B n) PPB-tree loader,
// kept for the E9 ablation.
func BuildClassic(d *emio.Disk, pts *extsort.File[geom.Point]) *Index {
	return buildMode(d, pts, ppb.Classic)
}

func buildMode(d *emio.Disk, pts *extsort.File[geom.Point], mode ppb.Mode) *Index {
	entries := make([]statbtree.Entry, 0, pts.Len())
	pts.Scan(func(_ int, p geom.Point) bool {
		entries = append(entries, statbtree.Entry{Key: p.X, Val: p.Y})
		return true
	})
	ix := &Index{disk: d, n: pts.Len()}
	if len(entries) > 0 {
		ix.maxX = entries[len(entries)-1].Key
	}
	ix.xmax = statbtree.Build(d, entries)
	if mode == ppb.SABE {
		ix.segs = ppb.BuildSABE(d, pts)
	} else {
		ix.segs = ppb.BuildClassic(d, pts)
	}
	return ix
}

// Len returns the number of indexed points.
func (ix *Index) Len() int { return ix.n }

// Query answers the top-open query [x1,x2] × [beta, +∞): the maximal
// points of P restricted to the rectangle, in increasing-x order.
// Cost: O(log_B n + k/B) I/Os.
func (ix *Index) Query(x1, x2, beta geom.Coord) []geom.Point {
	if ix.n == 0 || x1 > x2 {
		return nil
	}
	if x2 > ix.maxX {
		// The PPB-tree's timeline ends at the last point's x; every
		// segment alive "at +∞" is alive at maxX.
		x2 = ix.maxX
	}
	if x1 > x2 {
		return nil
	}
	// β′ = highest y-coordinate among points with x ∈ [x1,x2].
	betaPrime, ok := ix.xmax.MaxInRange(x1, x2)
	if !ok || betaPrime < beta {
		return nil
	}
	// Segments of Σ(P) crossing α2 × [β, β′], lowest first.
	byY := ix.segs.Query(x2, beta, betaPrime)
	// Ascending y = descending x; flip to the increasing-x convention.
	out := make([]geom.Point, len(byY))
	for i, p := range byY {
		out[len(byY)-1-i] = p
	}
	return out
}

// Dominance answers the 2-sided dominance query [x, +∞) × [y, +∞)
// (Figure 2e): the skyline of the points dominating (x, y). It is the
// top-open special case with α2 = +∞.
func (ix *Index) Dominance(x, y geom.Coord) []geom.Point {
	return ix.Query(x, geom.PosInf, y)
}

// Contour answers the 1-sided contour query (-∞, x] × (-∞, ∞)
// (Figure 2g): the skyline of all points with x-coordinate at most x.
func (ix *Index) Contour(x geom.Coord) []geom.Point {
	return ix.Query(geom.NegInf, x, geom.NegInf)
}

// SpaceWords returns the structure's footprint in words (linear: O(n)).
func (ix *Index) SpaceWords() int {
	return ix.xmax.Blocks()*ix.disk.Config().B + ix.segs.SpaceWords()
}

// Snapshot returns a point-in-time handle on the index. A static Index
// never mutates after Build — queries only read and the CPQA internals
// are confluently persistent — so the handle IS the index: pinning is
// free and the caller only has to keep the index's spans from being
// Freed (an emio retention, or simply not calling Free) while the
// handle is in use.
func (ix *Index) Snapshot() *Index { return ix }

// Free releases all blocks of the index.
func (ix *Index) Free() {
	ix.xmax.Free()
	ix.segs.Free()
}

// RightOpen is the axis-swapped companion index answering right-open
// queries [x, +∞) × [y1, y2] via a top-open Index over the transposed
// point set (swap the roles of x and y: dominance, and hence maximality,
// is preserved).
type RightOpen struct {
	inner *Index
}

// BuildRightOpen constructs a right-open index from points sorted by x.
// It transposes and re-sorts the points (an O((n/B) log_{M/B}(n/B))
// step if the transposed order must be produced; callers that already
// hold y-sorted input can pass it via BuildRightOpenFromYSorted to keep
// the build SABE).
func BuildRightOpen(d *emio.Disk, pts *extsort.File[geom.Point]) *RightOpen {
	sw := extsort.NewFile[geom.Point](d, 2)
	pts.Scan(func(_ int, p geom.Point) bool {
		sw.Append(geom.Point{X: p.Y, Y: p.X})
		return true
	})
	sorted := extsort.Sort(sw, geom.Less)
	defer sorted.Free()
	return &RightOpen{inner: Build(d, sorted)}
}

// BuildRightOpenFromYSorted builds the right-open index from points
// already sorted by y, in O(n/B) I/Os. The input file is preserved.
func BuildRightOpenFromYSorted(d *emio.Disk, ptsByY *extsort.File[geom.Point]) *RightOpen {
	sw := extsort.NewFile[geom.Point](d, 2)
	ptsByY.Scan(func(_ int, p geom.Point) bool {
		sw.Append(geom.Point{X: p.Y, Y: p.X})
		return true
	})
	defer sw.Free()
	return &RightOpen{inner: Build(d, sw)}
}

// Query answers the right-open query [x, +∞) × [y1, y2] in
// O(log_B n + k/B) I/Os, returning maxima in increasing-x order.
func (r *RightOpen) Query(x, y1, y2 geom.Coord) []geom.Point {
	sw := r.inner.Query(y1, y2, x)
	out := make([]geom.Point, len(sw))
	// Transposed answers come back in increasing (swapped) x = y;
	// swapping back yields decreasing original x, so reverse.
	for i, p := range sw {
		out[len(sw)-1-i] = geom.Point{X: p.Y, Y: p.X}
	}
	return out
}

// Free releases the index.
func (r *RightOpen) Free() { r.inner.Free() }

// SpaceWords returns the footprint in words.
func (r *RightOpen) SpaceWords() int { return r.inner.SpaceWords() }
