package repro

// One benchmark per experiment of EXPERIMENTS.md (E1–E12), each
// regenerating a row of the paper's Table 1, a claimed bound, or an
// engine-level scaling claim (E11–E12). Every
// benchmark reports ios/op — the quantity the paper's theorems bound —
// alongside Go's wall-clock metrics. cmd/skybench prints the full
// parameter sweeps; these benches pin one representative configuration
// each.

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/cpqa"
	"repro/internal/emio"
	"repro/internal/extsort"
	"repro/internal/foursided"
	"repro/internal/geom"
	"repro/internal/lowerbound"
	"repro/internal/ppb"
	"repro/internal/rankspace"
	"repro/internal/shard"
	"repro/internal/skyline"
	"repro/internal/topopen"

	"repro/internal/dyntop"
)

var benchCfg = emio.Config{B: 64, M: 64 * 64}

func reportIOs(b *testing.B, d *emio.Disk, fn func()) {
	b.Helper()
	d.DropCache()
	d.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fn()
	}
	b.StopTimer()
	b.ReportMetric(float64(d.Stats().IOs())/float64(b.N), "ios/op")
}

// BenchmarkE1StaticTopOpen — Table 1 row 1: O(log_B n + k/B) queries.
func BenchmarkE1StaticTopOpen(b *testing.B) {
	d := emio.NewDisk(benchCfg)
	pts := geom.GenUniform(1<<15, 1<<24, 1)
	geom.SortByX(pts)
	f := extsort.FromSlice(d, 2, pts)
	ix := topopen.Build(d, f)
	rng := rand.New(rand.NewSource(2))
	reportIOs(b, d, func() {
		x1 := geom.Coord(rng.Int63n(1 << 24))
		ix.Query(x1, x1+(1<<20), geom.Coord(rng.Int63n(1<<24)))
	})
}

// BenchmarkE2GridTopOpen — Table 1 row 2: O(log log_B U + k/B).
func BenchmarkE2GridTopOpen(b *testing.B) {
	d := emio.NewDisk(benchCfg)
	u := int64(1) << 40
	pts := geom.GenUniform(1<<13, u, 3)
	g := rankspace.BuildGrid(d, u, pts)
	rng := rand.New(rand.NewSource(4))
	reportIOs(b, d, func() {
		x1 := geom.Coord(rng.Int63n(u))
		g.Query(x1, x1+(1<<35), geom.Coord(rng.Int63n(u)))
	})
}

// BenchmarkE3RankSpace — Table 1 row 3: O(1 + k/B).
func BenchmarkE3RankSpace(b *testing.B) {
	d := emio.NewDisk(benchCfg)
	n := 1 << 15
	pts := geom.GenPermutation(n, 5)
	ix := rankspace.Build(d, int64(n), pts)
	rng := rand.New(rand.NewSource(6))
	reportIOs(b, d, func() {
		x1 := geom.Coord(rng.Int63n(int64(n)))
		ix.Query(x1, x1+512, geom.Coord(rng.Int63n(int64(n))))
	})
}

// BenchmarkE4AntiDominance — Table 1 row 4: the Lemma 8 adversarial
// workload against the optimal Theorem 6 structure.
func BenchmarkE4AntiDominance(b *testing.B) {
	d := emio.NewDisk(benchCfg)
	pts := lowerbound.Input(16, 3) // 4096 points
	qs := lowerbound.Queries(16, 3)
	ix := foursided.Build(d, 0.5, pts)
	i := 0
	reportIOs(b, d, func() {
		ix.Query(qs[i%len(qs)])
		i++
	})
}

// BenchmarkE5FourSided — Table 1 row 5: O((n/B)^ε + k/B).
func BenchmarkE5FourSided(b *testing.B) {
	d := emio.NewDisk(benchCfg)
	pts := geom.GenUniform(1<<14, 1<<24, 7)
	ix := foursided.Build(d, 0.5, pts)
	rng := rand.New(rand.NewSource(8))
	reportIOs(b, d, func() {
		x1 := geom.Coord(rng.Int63n(1 << 24))
		y1 := geom.Coord(rng.Int63n(1 << 24))
		ix.Query(geom.Rect{X1: x1, X2: x1 + (1 << 21), Y1: y1, Y2: y1 + (1 << 21)})
	})
}

// BenchmarkE6DynamicTopOpen — Table 1 row 6: queries and updates of the
// Theorem 4 structure across ε.
func BenchmarkE6DynamicTopOpen(b *testing.B) {
	for _, eps := range []float64{0, 0.5, 1} {
		b.Run(epsName(eps)+"/query", func(b *testing.B) {
			d := emio.NewDisk(benchCfg)
			pts := geom.GenUniform(1<<14, 1<<24, 9)
			geom.SortByX(pts)
			tr := dyntop.BuildSABE(d, eps, pts)
			rng := rand.New(rand.NewSource(10))
			reportIOs(b, d, func() {
				x1 := geom.Coord(rng.Int63n(1 << 24))
				tr.Query(x1, x1+(1<<21), geom.Coord(rng.Int63n(1<<24)))
			})
		})
		b.Run(epsName(eps)+"/update", func(b *testing.B) {
			d := emio.NewDisk(benchCfg)
			pts := geom.GenUniform(1<<14, 1<<24, 11)
			geom.SortByX(pts)
			tr := dyntop.BuildSABE(d, eps, pts)
			rng := rand.New(rand.NewSource(12))
			reportIOs(b, d, func() {
				p := geom.Point{X: (1 << 25) + rng.Int63n(1<<24), Y: (1 << 25) + rng.Int63n(1<<24)}
				tr.Insert(p)
				tr.Delete(p)
			})
		})
	}
}

func epsName(e float64) string {
	switch e {
	case 0:
		return "eps0"
	case 0.5:
		return "eps0.5"
	default:
		return "eps1"
	}
}

// BenchmarkE7DynamicFourSided — Table 1 row 7: O(log(n/B)) amortized
// updates of the Theorem 6 structure.
func BenchmarkE7DynamicFourSided(b *testing.B) {
	d := emio.NewDisk(benchCfg)
	pts := geom.GenUniform(1<<13, 1<<24, 13)
	ix := foursided.Build(d, 0.5, pts)
	rng := rand.New(rand.NewSource(14))
	reportIOs(b, d, func() {
		p := geom.Point{X: (1 << 25) + rng.Int63n(1<<24), Y: (1 << 25) + rng.Int63n(1<<24)}
		ix.Insert(p)
		ix.Delete(p)
	})
}

// BenchmarkE8CPQA — Theorem 3: I/O-CPQA operation cost (worst-case O(1);
// o(1) amortized with resident criticals).
func BenchmarkE8CPQA(b *testing.B) {
	b.Run("mixed", func(b *testing.B) {
		d := emio.NewDisk(emio.Config{B: 64, M: 1 << 22})
		q := cpqa.New(d, 64)
		rng := rand.New(rand.NewSource(15))
		reportIOs(b, d, func() {
			switch rng.Intn(3) {
			case 0, 1:
				q = q.InsertAndAttrite(cpqa.Elem{Key: rng.Int63n(1 << 30)})
			default:
				_, nq, _ := q.DeleteMin()
				q = nq
			}
		})
	})
	b.Run("catenate", func(b *testing.B) {
		d := emio.NewDisk(emio.Config{B: 64, M: 1 << 22})
		rng := rand.New(rand.NewSource(16))
		q := cpqa.New(d, 64)
		reportIOs(b, d, func() {
			q2 := cpqa.New(d, 64).InsertAndAttrite(cpqa.Elem{Key: rng.Int63n(1 << 30)})
			q = cpqa.CatenateAndAttrite(q, q2)
		})
	})
}

// BenchmarkE9SABEBuild — §2.3: SABE O(n/B) PPB-tree load versus the
// generic O(n log_B n) loader.
func BenchmarkE9SABEBuild(b *testing.B) {
	pts := geom.GenUniform(1<<14, 1<<24, 17)
	geom.SortByX(pts)
	b.Run("sabe", func(b *testing.B) {
		var ios uint64
		for i := 0; i < b.N; i++ {
			d := emio.NewDisk(benchCfg)
			f := extsort.FromSlice(d, 2, pts)
			d.DropCache()
			d.ResetStats()
			ppb.BuildSABE(d, f)
			d.DropCache()
			ios += d.Stats().IOs()
		}
		b.ReportMetric(float64(ios)/float64(b.N), "ios/op")
	})
	b.Run("classic", func(b *testing.B) {
		var ios uint64
		for i := 0; i < b.N; i++ {
			d := emio.NewDisk(benchCfg)
			f := extsort.FromSlice(d, 2, pts)
			d.DropCache()
			d.ResetStats()
			ppb.BuildClassic(d, f)
			d.DropCache()
			ios += d.Stats().IOs()
		}
		b.ReportMetric(float64(ios)/float64(b.N), "ios/op")
	})
}

// BenchmarkE10NaiveBaseline — §1.2: the scan-and-sort baseline every
// index is compared against.
func BenchmarkE10NaiveBaseline(b *testing.B) {
	d := emio.NewDisk(benchCfg)
	pts := geom.GenUniform(1<<14, 1<<24, 18)
	f := extsort.FromSlice(d, 2, pts)
	rng := rand.New(rand.NewSource(19))
	reportIOs(b, d, func() {
		x1 := geom.Coord(rng.Int63n(1 << 24))
		skyline.NaiveRangeSkyline(d, f, geom.TopOpen(x1, x1+(1<<20), geom.Coord(rng.Int63n(1<<24))))
	})
}

// BenchmarkE11ShardedTopOpen — the scaling layer: top-open queries
// through the 4-shard concurrent engine.
func BenchmarkE11ShardedTopOpen(b *testing.B) {
	pts := geom.GenUniform(1<<14, 1<<24, 21)
	geom.SortByX(pts)
	eng, err := shard.New(shard.Options{Machine: benchCfg, Shards: 4, Workers: 4, Dynamic: true}, pts)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(22))
	eng.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := geom.Coord(rng.Int63n(1 << 24))
		eng.TopOpen(x1, x1+(1<<20), geom.Coord(rng.Int63n(1<<24)))
	}
	b.StopTimer()
	b.ReportMetric(float64(eng.Stats().IOs())/float64(b.N), "ios/op")
}

// BenchmarkE12ShardedFourSided — 4-sided-family queries through the
// per-shard Theorem 6 structures and the right-to-left merge.
func BenchmarkE12ShardedFourSided(b *testing.B) {
	pts := geom.GenUniform(1<<14, 1<<24, 23)
	geom.SortByX(pts)
	eng, err := shard.New(shard.Options{Machine: benchCfg, Shards: 4, Workers: 4, Dynamic: true}, pts)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(24))
	eng.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x1 := geom.Coord(rng.Int63n(1 << 24))
		y1 := geom.Coord(rng.Int63n(1 << 24))
		eng.FourSided(geom.Rect{X1: x1, X2: x1 + (1 << 21), Y1: y1, Y2: y1 + (1 << 21)})
	}
	b.StopTimer()
	b.ReportMetric(float64(eng.Stats().IOs())/float64(b.N), "ios/op")
}

// BenchmarkE12BatchInsert vs BenchmarkE12SingleInsert — the batched
// update path: one shard-lock acquisition per shard per batch instead of
// one per point. Each op loads the same 512-point batch into a fresh
// 4-shard engine.
func benchBatchLoad(b *testing.B, batched bool) {
	const nBase, nBatch = 1 << 13, 512
	all := geom.GenUniform(nBase+nBatch, 1<<24, 25)
	base := append([]geom.Point(nil), all[:nBase]...)
	batch := all[nBase:]
	geom.SortByX(base)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		eng, err := shard.New(shard.Options{Machine: benchCfg, Shards: 4, Workers: 4, Dynamic: true}, base)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if batched {
			if err := eng.BatchInsert(batch); err != nil {
				b.Fatal(err)
			}
		} else {
			for _, p := range batch {
				if err := eng.Insert(p); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.ReportMetric(nBatch, "points/op")
}

func BenchmarkE12BatchInsert(b *testing.B)  { benchBatchLoad(b, true) }
func BenchmarkE12SingleInsert(b *testing.B) { benchBatchLoad(b, false) }

// BenchmarkE13MirroredRightOpen — mirrored fast path: right-open
// queries served by the transposed top-open structure in O(log_B n)
// I/Os, vs the Theorem 6 path's (n/B)^eps on the same index without
// mirrors (BenchmarkE13Theorem6RightOpen).
func benchRightOpen(b *testing.B, mirrors bool) {
	const n = 1 << 14
	pts := geom.GenUniform(n, int64(n)*16, 29)
	db, err := core.Open(core.Options{Machine: benchCfg, Mirrors: mirrors}, pts)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(30))
	db.ResetStats()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y1 := rng.Int63n(int64(n) * 16)
		db.RangeSkyline(geom.RightOpen(rng.Int63n(int64(n)*16), y1, y1+int64(n)*2))
	}
	b.StopTimer()
	b.ReportMetric(float64(db.Stats().IOs())/float64(b.N), "ios/op")
}

func BenchmarkE13MirroredRightOpen(b *testing.B) { benchRightOpen(b, true) }
func BenchmarkE13Theorem6RightOpen(b *testing.B) { benchRightOpen(b, false) }
