// Package repro is an I/O-efficient library for planar range skyline
// reporting and attrition priority queues, reproducing
//
//	Kejlberg-Rasmussen, Tao, Tsakalidis, Tsichlas, Yoon.
//	"I/O-Efficient Planar Range Skyline and Attrition Priority Queues",
//	PODS 2013.
//
// The library runs on a simulated external-memory machine (M words of
// memory, blocks of B words, cost = block transfers), so every operation
// reports exactly the I/O cost the paper's theorems bound. See DESIGN.md
// for the architecture and EXPERIMENTS.md for the reproduced results.
//
// Quick start:
//
//	db, err := repro.Open(repro.Options{}, points)
//	sky := db.TopOpen(x1, x2, beta) // maxima of P ∩ [x1,x2]×[beta,∞)
//
// Every Figure-2 query shape has a named entry point — TopOpen,
// RightOpen, BottomOpen, LeftOpen, Dominance, AntiDominance, Contour —
// plus the general DB.RangeSkyline; an internal planner
// (internal/engine) routes each shape to the asymptotically best
// backend. Dynamic indexes accept Insert/Delete and the batched
// DB.BatchInsert/DB.BatchDelete, which amortize per-call overhead
// across the batch.
//
// Opening with Options{Shards: K, Workers: W} partitions the point set
// by x-range across K shards, each with a private simulated disk
// carrying both a top-open and a 4-sided structure, and serves every
// query shape from a concurrent worker-pool engine (internal/shard)
// whose answers are identical to the single-disk structures'. Batched
// updates group by destination shard and take each shard lock once per
// batch.
//
// Opening with Options{Mirrors: true} additionally maintains a
// transposed (x↔y) copy of the point set under its own top-open
// structure and serves RightOpen — and every query rectangle with a
// grounded right edge — from it in O(log) I/Os instead of the Theorem 6
// (n/B)^ε cost, byte-identically, at roughly one extra top-open
// structure of space (on dynamic indexes the mirrored structure is the
// Theorem 4 tree, whose k/B^{1−ε} reporting term defers the win to
// larger n for wide queries). LeftOpen, BottomOpen and AntiDominance stay on
// the Theorem 6 path: the transpose is the only reflection of the plane
// that preserves dominance, and the paper's Theorem 5 lower bound
// proves those shapes cannot beat (n/B)^ε at linear space.
//
// Opening with Options{CacheEntries: E} puts a read-through LRU cache
// in front of the whole query planner: up to E hot rectangles are
// re-answered from memory at zero simulated I/O, byte-identically to
// the uncached answers, and updates invalidate only the entries whose
// rectangles could contain the written point — shard-aware when the
// index is sharded (only the written shard's x-slab is scanned out,
// refined by the mirrored engine's y-cuts when Mirrors is on too).
//
// Opening with Options{AsyncWrites: true} buffers every write in
// per-shard queues that return without touching any structure, so
// writer latency is independent of structure rebuild costs; buffers
// drain through the batched paths when they reach FlushPoints, every
// FlushInterval, and on DB.Flush/DB.Close. Reads stay exact — a query
// drains every buffer its rectangle intersects first, so answers
// (buffered deletes included) are byte-identical to a synchronous
// index's — and a cache composes underneath the queue: one drain costs
// one shard-aware invalidation sweep instead of one per point.
// DB.QueueCounters reports enqueued/drained/coalesced/forced-drain
// totals plus ReadDrains (buffered writes applied by read-forced
// drains — the write work reads pay for on the drain-on-read path),
// and DB.Close quiesces the index (drains the queue, stops its
// background drainer, waits out in-flight shard workers).
//
// DB.Snapshot pins a consistent point-in-time view at a drain boundary
// and serves every Figure-2 shape from it without shard write locks or
// forced drains — writers keep streaming while snapshot reads stay
// byte-identical to the live index's answers at the pin point.
// Snapshots must be Closed: retired storage spans are held (deferred,
// not reclaimed) while any snapshot that pinned them is open.
//
// Opening with Options{Dir: path} makes the index durable: two real
// files under the directory — a 4 KB-paged snapshot of the live point
// set (internal/pager) and a write-ahead log of acknowledged update
// batches (internal/wal) — survive a crash, and reopening the same
// directory rebuilds the structures from the snapshot and replays the
// WAL tail through the batched paths (DB.Recover reports what replay
// involved). DB.Flush and DB.Close checkpoint: snapshot the live set,
// then truncate the WAL. With AsyncWrites, "acknowledged" means
// drained — each drain batch is one WAL record, so buffered writes
// that never drained are lost by a crash, but a drained batch survives
// kill -9 anywhere before its checkpoint. An empty Dir (the default)
// keeps everything on the simulated machine: deterministic I/O counts,
// nothing on the host filesystem.
//
// Durable indexes tolerate transient storage faults: every pager and
// WAL operation retries with bounded exponential backoff (Options.Retry),
// so an EINTR, EAGAIN or short write never surfaces to a caller. A
// FATAL fault (ENOSPC, I/O error, or a transient one that exhausts the
// retry budget) latches the DB into degraded read-only mode instead of
// corrupting it: queries, Len and Snapshot keep serving the applied
// state — byte-identical to what reopening the directory reconstructs —
// while writes return ErrDegraded until the directory is reopened.
// Options.MaxBuffered caps the async queue's buffered slabs; an
// over-cap write either drains its slab inline before admission (the
// default) or is shed with ErrBackpressure (Options.ShedWrites).
// DB.Resilience reports the counters behind all of this.
//
// Everything above is also served over HTTP/JSON by cmd/skylined
// (internal/serve): one namespace per DB, every query shape plus
// snapshot-pinned pagination, group-committed single-point writes
// through the batched paths, and the typed sentinels mapped to
// statuses clients can act on (ErrBackpressure → 429 + Retry-After,
// ErrDegraded → 503 read-only, ErrStatic → 409); SIGTERM drains and
// checkpoints before exit, so acknowledged writes survive a graceful
// shutdown. docs/API.md specifies the wire protocol, and cmd/skyload
// load-tests a running server.
//
// The subsystems are importable individually: internal/topopen
// (Theorem 1), internal/rankspace (Theorem 2 and Corollary 1),
// internal/cpqa (Theorem 3), internal/dyntop (Theorem 4),
// internal/lowerbound (Lemma 8 / Theorem 5), internal/foursided
// (Theorem 6), internal/shard and internal/engine (the scaling seam).
package repro

import (
	"repro/internal/core"
	"repro/internal/cpqa"
	"repro/internal/emio"
	"repro/internal/engine"
	"repro/internal/geom"
	"repro/internal/pqa"
)

// Re-exported fundamental types.
type (
	// Point is a point in the plane.
	Point = geom.Point
	// Rect is an axis-parallel query rectangle; grounded sides use
	// NegInf/PosInf.
	Rect = geom.Rect
	// Coord is a coordinate value.
	Coord = geom.Coord
	// Options configures an index (machine parameters, ε, dynamism).
	Options = core.Options
	// DB is the range skyline index.
	DB = core.DB
	// MachineConfig fixes the simulated EM machine (B, M).
	MachineConfig = emio.Config
	// IOStats counts block transfers.
	IOStats = emio.Stats
	// QueueCounters are the async write queue's operation totals
	// (enqueued, drained, coalesced, forced drains, read drains); see
	// Options.AsyncWrites and DB.QueueCounters.
	QueueCounters = engine.QueueCounters
	// CacheCounters are the read-through cache's operation totals
	// (hits, misses, evictions, invalidations); see
	// Options.CacheEntries and DB.CacheCounters.
	CacheCounters = engine.CacheCounters
	// RecoveryStats reports what reopening a durable directory
	// involved (snapshot size, WAL records replayed); see DB.Recover.
	RecoveryStats = core.RecoveryStats
	// Snapshot is a pinned point-in-time view of a DB; see DB.Snapshot.
	Snapshot = core.Snapshot
	// ResilienceStats aggregates the storage stack's fault-handling
	// counters (retries, backpressure, degraded latch); see
	// DB.Resilience.
	ResilienceStats = core.ResilienceStats
	// PQAElem is an element of a priority queue with attrition.
	PQAElem = pqa.Elem
)

// Grounded-coordinate sentinels.
const (
	NegInf = geom.NegInf
	PosInf = geom.PosInf
)

// Typed failure sentinels, matched with errors.Is. Write paths return
// wrapped chains carrying exactly one of these (plus detail):
//
//   - ErrClosed: the write arrived after DB.Close; the index is gone on
//     purpose and no retry helps.
//   - ErrDegraded: a fatal storage error latched the DB into degraded
//     read-only mode. Queries, Len and Snapshot keep serving the
//     applied state — byte-identical to what reopening Options.Dir
//     reconstructs from the snapshot and WAL — while every write is
//     rejected. The latch never clears in-process; reopen to recover.
//   - ErrBackpressure: the async queue's Options.MaxBuffered cap shed
//     the write (Options.ShedWrites policy only). The index is healthy;
//     retry after a DB.Flush or back off.
//   - ErrRetryExhausted: a transient storage fault (EINTR, EAGAIN,
//     short write) outlived the bounded retry budget of Options.Retry.
//     It surfaces inside the ErrDegraded chain that latched it.
//
// DB.Resilience reports the matching counters (retries absorbed,
// retries exhausted, writes shed/blocked, degraded flag).
var (
	ErrClosed         = core.ErrClosed
	ErrDegraded       = core.ErrDegraded
	ErrBackpressure   = core.ErrBackpressure
	ErrRetryExhausted = core.ErrRetryExhausted
	// ErrStatic rejects every write on an index opened without
	// Options.Dynamic: the index is healthy but immutable by
	// construction, so retrying cannot help.
	ErrStatic = core.ErrStatic
)

// Open builds a range skyline index over pts. See core.Open.
func Open(opts Options, pts []Point) (*DB, error) { return core.Open(opts, pts) }

// Skyline computes the skyline of pts in memory (the oracle; no I/O
// accounting).
func Skyline(pts []Point) []Point { return geom.Skyline(pts) }

// RangeSkyline computes the skyline of pts ∩ r in memory.
func RangeSkyline(pts []Point, r Rect) []Point { return geom.RangeSkyline(pts, r) }

// Query-rectangle constructors (Figure 2 of the paper).
var (
	TopOpen       = geom.TopOpen
	LeftOpen      = geom.LeftOpen
	RightOpen     = geom.RightOpen
	BottomOpen    = geom.BottomOpen
	Dominance     = geom.Dominance
	AntiDominance = geom.AntiDominance
	Contour       = geom.Contour
)

// PQA is an in-memory priority queue with attrition (Sundar's classic
// structure, the paper's baseline).
type PQA = pqa.PQA

// NewPQA returns an empty priority queue with attrition.
func NewPQA() *PQA { return pqa.New() }

// CPQA is the paper's I/O-efficient catenable priority queue with
// attrition (Theorem 3). Queues are immutable: operations return new
// queues that share structure with their inputs.
type CPQA = cpqa.Queue

// NewCPQA returns an empty I/O-CPQA on a fresh simulated disk with
// buffer parameter b (1 <= b <= B).
func NewCPQA(cfg MachineConfig, b int) (*CPQA, *emio.Disk) {
	d := emio.NewDisk(cfg)
	return cpqa.New(d, b), d
}

// CatenateAndAttrite merges two queues: elements of q1 that are >= the
// minimum of q2 are attrited.
func CatenateAndAttrite(q1, q2 *CPQA) *CPQA { return cpqa.CatenateAndAttrite(q1, q2) }
