package repro

import (
	"reflect"
	"testing"
)

func TestPublicAPISmoke(t *testing.T) {
	pts := []Point{
		{X: 1, Y: 9}, {X: 2, Y: 4}, {X: 3, Y: 7}, {X: 5, Y: 6},
		{X: 6, Y: 2}, {X: 7, Y: 5}, {X: 8, Y: 1}, {X: 9, Y: 3},
	}
	db, err := Open(Options{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	got := db.TopOpen(2, 8, 2)
	want := RangeSkyline(pts, TopOpen(2, 8, 2))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopOpen = %v, want %v", got, want)
	}
	db.Disk().DropCache()
	db.ResetStats()
	db.TopOpen(2, 8, 2)
	if db.Stats().IOs() == 0 {
		t.Error("cold-cache query charged no I/Os")
	}
	if got := db.RangeSkyline(Rect{X1: 2, X2: 8, Y1: 2, Y2: 6}); !reflect.DeepEqual(got, RangeSkyline(pts, Rect{X1: 2, X2: 8, Y1: 2, Y2: 6})) {
		t.Fatalf("4-sided = %v", got)
	}
}

// TestPublicFigure2Parity checks that all seven Figure-2 shapes are
// reachable both as rectangle constructors and as named DB methods, on
// single-disk and sharded dynamic indexes, and that the batched update
// path is part of the public surface.
func TestPublicFigure2Parity(t *testing.T) {
	pts := []Point{
		{X: 1, Y: 9}, {X: 2, Y: 4}, {X: 3, Y: 7}, {X: 5, Y: 6},
		{X: 6, Y: 2}, {X: 7, Y: 5}, {X: 8, Y: 1}, {X: 9, Y: 3},
	}
	for _, opts := range []Options{
		{Dynamic: true},
		{Dynamic: true, Shards: 3, Workers: 2},
	} {
		db, err := Open(opts, pts)
		if err != nil {
			t.Fatal(err)
		}
		checks := []struct {
			name string
			got  []Point
			r    Rect
		}{
			{"TopOpen", db.TopOpen(2, 8, 2), TopOpen(2, 8, 2)},
			{"RightOpen", db.RightOpen(3, 2, 8), RightOpen(3, 2, 8)},
			{"BottomOpen", db.BottomOpen(2, 8, 6), BottomOpen(2, 8, 6)},
			{"LeftOpen", db.LeftOpen(7, 2, 8), LeftOpen(7, 2, 8)},
			{"Dominance", db.Dominance(4, 3), Dominance(4, 3)},
			{"AntiDominance", db.AntiDominance(6, 7), AntiDominance(6, 7)},
			{"Contour", db.Contour(6), Contour(6)},
		}
		for _, c := range checks {
			want := RangeSkyline(pts, c.r)
			if len(c.got) != len(want) || (len(want) > 0 && !reflect.DeepEqual(c.got, want)) {
				t.Fatalf("opts=%+v %s = %v, want %v", opts, c.name, c.got, want)
			}
		}
		extra := []Point{{X: 11, Y: 11}, {X: 12, Y: 10}}
		if err := db.BatchInsert(extra); err != nil {
			t.Fatal(err)
		}
		if got := db.Dominance(10, 9); len(got) != 2 {
			t.Fatalf("post-batch Dominance = %v", got)
		}
		if removed, err := db.BatchDelete(extra); err != nil || removed != 2 {
			t.Fatalf("BatchDelete = %d, %v", removed, err)
		}
		if db.Len() != len(pts) {
			t.Fatalf("Len = %d, want %d", db.Len(), len(pts))
		}
	}
}

func TestPublicPQA(t *testing.T) {
	q := NewPQA()
	for _, k := range []int64{5, 3, 8, 2} {
		q.InsertAndAttrite(PQAElem{Key: k})
	}
	if e, ok := q.FindMin(); !ok || e.Key != 2 {
		t.Fatalf("FindMin = %v,%t", e, ok)
	}
	if q.Len() != 1 { // 2 attrited everything
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestPublicCPQA(t *testing.T) {
	q, _ := NewCPQA(MachineConfig{B: 16, M: 1 << 16}, 4)
	for i := int64(0); i < 100; i++ {
		q = q.InsertAndAttrite(PQAElem{Key: i})
	}
	q2, _ := NewCPQA(MachineConfig{B: 16, M: 1 << 16}, 4)
	_ = q2
	e, q3, ok := q.DeleteMin()
	if !ok || e.Key != 0 || q3.Len() != 99 {
		t.Fatalf("DeleteMin = %v,%t len=%d", e, ok, q3.Len())
	}
}
