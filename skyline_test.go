package repro

import (
	"reflect"
	"testing"
)

func TestPublicAPISmoke(t *testing.T) {
	pts := []Point{
		{X: 1, Y: 9}, {X: 2, Y: 4}, {X: 3, Y: 7}, {X: 5, Y: 6},
		{X: 6, Y: 2}, {X: 7, Y: 5}, {X: 8, Y: 1}, {X: 9, Y: 3},
	}
	db, err := Open(Options{}, pts)
	if err != nil {
		t.Fatal(err)
	}
	got := db.TopOpen(2, 8, 2)
	want := RangeSkyline(pts, TopOpen(2, 8, 2))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("TopOpen = %v, want %v", got, want)
	}
	db.Disk().DropCache()
	db.ResetStats()
	db.TopOpen(2, 8, 2)
	if db.Stats().IOs() == 0 {
		t.Error("cold-cache query charged no I/Os")
	}
	if got := db.RangeSkyline(Rect{X1: 2, X2: 8, Y1: 2, Y2: 6}); !reflect.DeepEqual(got, RangeSkyline(pts, Rect{X1: 2, X2: 8, Y1: 2, Y2: 6})) {
		t.Fatalf("4-sided = %v", got)
	}
}

func TestPublicPQA(t *testing.T) {
	q := NewPQA()
	for _, k := range []int64{5, 3, 8, 2} {
		q.InsertAndAttrite(PQAElem{Key: k})
	}
	if e, ok := q.FindMin(); !ok || e.Key != 2 {
		t.Fatalf("FindMin = %v,%t", e, ok)
	}
	if q.Len() != 1 { // 2 attrited everything
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestPublicCPQA(t *testing.T) {
	q, _ := NewCPQA(MachineConfig{B: 16, M: 1 << 16}, 4)
	for i := int64(0); i < 100; i++ {
		q = q.InsertAndAttrite(PQAElem{Key: i})
	}
	q2, _ := NewCPQA(MachineConfig{B: 16, M: 1 << 16}, 4)
	_ = q2
	e, q3, ok := q.DeleteMin()
	if !ok || e.Key != 0 || q3.Len() != 99 {
		t.Fatalf("DeleteMin = %v,%t len=%d", e, ok, q3.Len())
	}
}
