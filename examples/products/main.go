// Products: the paper's motivating workload (§1.1) — price vs. quality
// trade-offs in a product catalogue. Price is negated so that "cheaper"
// and "better" both mean "larger", making the interesting products
// exactly the skyline. Range predicates ("price between …, rating at
// least …") become range skyline queries.
package main

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/examples/internal/demo"
	"repro/internal/geom"
)

func main() {
	// Synthetic catalogue: 50k products, price in cents (clustered in
	// market segments), quality score. Indexed as (-price, quality):
	// a product is "interesting" iff nothing is simultaneously cheaper
	// and better.
	rng := rand.New(rand.NewSource(42))
	raw := geom.GenClustered(50000, 6, 1<<22, 7)
	pts := make([]repro.Point, len(raw))
	for i, p := range raw {
		pts[i] = repro.Point{X: -p.X, Y: p.Y} // X = -price, Y = quality
	}
	db := demo.MustOpen(repro.Options{Machine: demo.Machine(256)}, pts)

	fmt.Printf("catalogue: %d products\n", db.Len())

	// "Best products costing between lo and hi."
	for i := 0; i < 3; i++ {
		lo := repro.Coord(rng.Int63n(1 << 21))
		hi := lo + repro.Coord(rng.Int63n(1<<21))
		db.ResetStats()
		// price in [lo,hi] <=> X in [-hi,-lo]; any quality: top-open.
		ans := db.TopOpen(-hi, -lo, repro.NegInf)
		fmt.Printf("price in [%d,%d]: %d pareto products (%v)\n",
			lo, hi, len(ans), db.Stats())
	}

	// "Best products costing between lo and hi with quality in a band"
	// — a 4-sided query, the provably hard variant (Theorem 5).
	for i := 0; i < 3; i++ {
		lo := repro.Coord(rng.Int63n(1 << 21))
		hi := lo + repro.Coord(rng.Int63n(1<<21))
		q1 := repro.Coord(rng.Int63n(1 << 21))
		q2 := q1 + repro.Coord(rng.Int63n(1<<21))
		db.ResetStats()
		ans := db.RangeSkyline(repro.Rect{X1: -hi, X2: -lo, Y1: q1, Y2: q2})
		fmt.Printf("price in [%d,%d], quality in [%d,%d]: %d products (%v)\n",
			lo, hi, q1, q2, len(ans), db.Stats())
	}

	// Sanity: cross-check one query against the in-memory oracle.
	r := repro.Rect{X1: -(1 << 21), X2: 0, Y1: 0, Y2: 1 << 21}
	got := db.RangeSkyline(r)
	want := repro.RangeSkyline(pts, r)
	fmt.Printf("oracle cross-check: %d == %d points: %v\n",
		len(got), len(want), len(got) == len(want))
}
