// Package demo holds the few lines every example used to repeat:
// machine-option setup, open-or-die, and the cold-cache "run a query
// and print its I/O cost" loop. The README's snippets compile against
// this package, so doc drift is a build break.
package demo

import (
	"fmt"

	"repro"
)

// Machine is the examples' simulated external-memory machine: blocks
// of b words, a memory of 64 blocks — big enough that B and M matter,
// small enough that I/O counts stay legible.
func Machine(b int) repro.MachineConfig {
	return repro.MachineConfig{B: b, M: b * 64}
}

// MustOpen opens an index or dies — example-grade error handling.
func MustOpen(opts repro.Options, pts []repro.Point) *repro.DB {
	db, err := repro.Open(opts, pts)
	if err != nil {
		panic(err)
	}
	return db
}

// Show runs one query against a cold cache and prints its answer and
// simulated I/O cost.
func Show(db *repro.DB, name string, fn func() []repro.Point) {
	db.Disk().DropCache()
	db.ResetStats()
	ans := fn()
	fmt.Printf("%-16s -> %v  (%v)\n", name, ans, db.Stats())
}
