// Quickstart: build a range skyline index and run the query variants of
// the paper's Figure 2, printing answers and the I/O cost of each.
package main

import (
	"repro"
	"repro/examples/internal/demo"
)

func main() {
	// The running example of the paper's Figure 1.
	pts := []repro.Point{
		{X: 1, Y: 9}, {X: 2, Y: 4}, {X: 3, Y: 7}, {X: 5, Y: 6},
		{X: 6, Y: 2}, {X: 7, Y: 5}, {X: 8, Y: 1}, {X: 9, Y: 3},
	}
	db := demo.MustOpen(repro.Options{}, pts)

	demo.Show(db, "skyline", db.Skyline)
	demo.Show(db, "top-open", func() []repro.Point { return db.TopOpen(2, 8, 2) })
	demo.Show(db, "dominance", func() []repro.Point { return db.Dominance(2, 2) })
	demo.Show(db, "contour", func() []repro.Point { return db.Contour(7) })
	demo.Show(db, "left-open", func() []repro.Point { return db.LeftOpen(8, 2, 6) })
	demo.Show(db, "anti-dominance", func() []repro.Point { return db.AntiDominance(8, 6) })
	demo.Show(db, "4-sided", func() []repro.Point {
		return db.RangeSkyline(repro.Rect{X1: 2, X2: 8, Y1: 2, Y2: 6})
	})
}
