// Quickstart: build a range skyline index and run the query variants of
// the paper's Figure 2, printing answers and the I/O cost of each.
package main

import (
	"fmt"

	"repro"
)

func main() {
	// The running example of the paper's Figure 1.
	pts := []repro.Point{
		{X: 1, Y: 9}, {X: 2, Y: 4}, {X: 3, Y: 7}, {X: 5, Y: 6},
		{X: 6, Y: 2}, {X: 7, Y: 5}, {X: 8, Y: 1}, {X: 9, Y: 3},
	}
	db, err := repro.Open(repro.Options{}, pts)
	if err != nil {
		panic(err)
	}

	show := func(name string, fn func() []repro.Point) {
		db.Disk().DropCache() // cold-cache cost of each query
		db.ResetStats()
		ans := fn()
		fmt.Printf("%-16s -> %v  (%v)\n", name, ans, db.Stats())
	}

	show("skyline", db.Skyline)
	show("top-open", func() []repro.Point { return db.TopOpen(2, 8, 2) })
	show("dominance", func() []repro.Point { return db.Dominance(2, 2) })
	show("contour", func() []repro.Point { return db.Contour(7) })
	show("left-open", func() []repro.Point { return db.LeftOpen(8, 2, 6) })
	show("anti-dominance", func() []repro.Point { return db.AntiDominance(8, 6) })
	show("4-sided", func() []repro.Point {
		return db.RangeSkyline(repro.Rect{X1: 2, X2: 8, Y1: 2, Y2: 6})
	})
}
