// Streamfeed: the rolling-window feed as a NETWORK client — the same
// workload examples/streamfeed ran against the library now runs
// against skylined's wire protocol (docs/API.md). A window of events
// rolls via /insert and /delete, top-open queries run continuously
// (oracle-checked client-side), and the feed is paginated through a
// server-pinned snapshot with limit/after_x resume tokens, so pages
// fetched while the window keeps rolling stitch together with no
// tearing: no event vanishes between pages, none appears twice.
//
// By default the example embeds a skylined-equivalent server in
// process, so `go run ./examples/streamfeed` is self-contained; point
// -base at a running skylined (with a "feed" namespace) to drive a
// real process instead.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"

	"repro"
	"repro/internal/geom"
	"repro/internal/serve"
)

// ---- a minimal wire client (the whole protocol is this small) ------

type wirePoint struct {
	X repro.Coord `json:"x"`
	Y repro.Coord `json:"y"`
}

type client struct {
	base, ns string
}

func (c *client) post(path string, body, out any) {
	blob, err := json.Marshal(body)
	if err != nil {
		panic(err)
	}
	resp, err := http.Post(c.base+"/v1/"+c.ns+path, "application/json", bytes.NewReader(blob))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close() //errlint:ok example client
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		panic(err)
	}
	if resp.StatusCode != http.StatusOK {
		panic(fmt.Sprintf("%s: %s: %s", path, resp.Status, raw))
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			panic(err)
		}
	}
}

// del issues a DELETE (the snapshot-release verb).
func (c *client) del(path string) {
	req, err := http.NewRequest(http.MethodDelete, c.base+"/v1/"+c.ns+path, nil)
	if err != nil {
		panic(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close() //errlint:ok example client
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(resp.Body) //errlint:ok best-effort detail for the panic below
		panic(fmt.Sprintf("DELETE %s: %s: %s", path, resp.Status, raw))
	}
}

func (c *client) insert(pts ...repro.Point) {
	wps := make([]wirePoint, len(pts))
	for i, p := range pts {
		wps[i] = wirePoint{p.X, p.Y}
	}
	c.post("/insert", map[string]any{"points": wps}, nil)
}

func (c *client) delete(p repro.Point) bool {
	var resp struct {
		Removed int `json:"removed"`
	}
	c.post("/delete", map[string]any{"point": wirePoint{p.X, p.Y}}, &resp)
	return resp.Removed == 1
}

type queryResp struct {
	Points     []wirePoint  `json:"points"`
	More       bool         `json:"more"`
	NextAfterX *repro.Coord `json:"next_after_x"`
}

func (c *client) query(req map[string]any) queryResp {
	var resp queryResp
	c.post("/query", req, &resp)
	return resp
}

func pointsOf(resp queryResp) []repro.Point {
	out := make([]repro.Point, len(resp.Points))
	for i, p := range resp.Points {
		out[i] = repro.Point{X: p.X, Y: p.Y}
	}
	return out
}

// --------------------------------------------------------------------

func main() {
	base := flag.String("base", "", "skylined base URL (default: embed a server in-process)")
	ns := flag.String("ns", "feed", "namespace")
	flag.Parse()

	if *base == "" {
		// Self-contained mode: an in-process server on a loopback port,
		// exactly what `skylined -config` would build for this config.
		srv, err := serve.New(serve.Config{Namespaces: map[string]serve.NamespaceConfig{
			*ns: {B: 128, M: 128 * 64},
		}})
		if err != nil {
			panic(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln) //errlint:ok ends with process exit; example server
		defer srv.Close()
		*base = "http://" + ln.Addr().String()
		fmt.Printf("embedded skylined on %s\n", *base)
	}
	c := &client{base: *base, ns: *ns}

	const window = 5000
	rng := rand.New(rand.NewSource(7))
	var live []repro.Point
	nextX := repro.Coord(0)
	usedY := map[repro.Coord]bool{}
	newPoint := func() repro.Point {
		nextX += 1 + repro.Coord(rng.Int63n(16))
		y := repro.Coord(rng.Int63n(1 << 30))
		for usedY[y] {
			y = repro.Coord(rng.Int63n(1 << 30))
		}
		usedY[y] = true
		return repro.Point{X: nextX, Y: y}
	}

	// Fill the window with one batched insert.
	fill := make([]repro.Point, window)
	for i := range fill {
		fill[i] = newPoint()
	}
	live = append(live, fill...)
	c.insert(fill...)

	// Roll the window: each step expires the oldest event over
	// /delete and admits a new one over /insert, querying
	// periodically and cross-checking against the in-memory oracle.
	queries := 0
	for step := 0; step < 600; step++ {
		old := live[0]
		live = live[1:]
		if !c.delete(old) {
			panic(fmt.Sprintf("step %d: delete %v reported absent", step, old))
		}
		p := newPoint()
		live = append(live, p)
		c.insert(p)

		if step%50 == 0 {
			x1 := live[rng.Intn(len(live)/2)].X
			x2 := x1 + repro.Coord(rng.Int63n(int64(window)*8))
			beta := repro.Coord(rng.Int63n(1 << 30))
			ans := pointsOf(c.query(map[string]any{"shape": "top-open", "x1": x1, "x2": x2, "beta": beta}))
			want := geom.RangeSkyline(live, geom.TopOpen(x1, x2, beta))
			if len(ans) != len(want) {
				panic(fmt.Sprintf("step %d: answer size %d, oracle %d", step, len(ans), len(want)))
			}
			queries++
		}
	}
	fmt.Printf("window=%d events, 600 roll steps, %d oracle-checked queries\n", window, queries)

	// Paginate the feed through a server-pinned snapshot. The resume
	// token is the server's next_after_x: every remaining skyline
	// point — and any dominator of one — has x past it, so each page
	// continues the staircase exactly. On the live index the window
	// rolling between fetches could delete a page boundary or push new
	// maxima into an already-read range; on the pinned snapshot the
	// pages must stitch into the exact skyline at pin time, however
	// far the live index has moved on.
	var pin struct {
		Snapshot string `json:"snapshot"`
	}
	c.post("/snapshot", nil, &pin)
	frozen := append([]repro.Point(nil), live...)
	const pageSize = 4
	x1, x2, beta := frozen[0].X, frozen[len(frozen)-1].X, repro.Coord(0)
	req := map[string]any{"shape": "top-open", "x1": x1, "x2": x2, "beta": beta,
		"snapshot": pin.Snapshot, "limit": pageSize}
	var feed []repro.Point
	pages := 0
	for {
		resp := c.query(req)
		feed = append(feed, pointsOf(resp)...)
		pages++
		if !resp.More {
			break
		}
		req["after_x"] = *resp.NextAfterX
		// The stream does not wait for the reader: roll the window
		// between page fetches.
		for i := 0; i < 40; i++ {
			old := live[0]
			live = live[1:]
			if !c.delete(old) {
				panic(fmt.Sprintf("pagination roll: delete %v reported absent", old))
			}
			p := newPoint()
			live = append(live, p)
			c.insert(p)
		}
	}
	c.del("/snapshot/" + pin.Snapshot) // release the pin
	want := geom.RangeSkyline(frozen, geom.TopOpen(x1, x2, beta))
	if len(feed) != len(want) {
		panic(fmt.Sprintf("paginated feed tore: %d events, want %d", len(feed), len(want)))
	}
	for i := range feed {
		if feed[i] != want[i] {
			panic(fmt.Sprintf("paginated feed tore at %d: %v, want %v", i, feed[i], want[i]))
		}
	}
	fmt.Printf("paginated feed: %d events in %d pages of <=%d while the window rolled on — no tearing\n",
		len(feed), pages, pageSize)
}
