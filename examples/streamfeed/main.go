// Streamfeed: a dynamic workload for the Theorem 4 structure — a rolling
// window of events where each arrival inserts a point, old events are
// deleted, and top-open range skyline queries ("best items in this time
// range scoring at least s") run continuously. Demonstrates the
// O(log²_{B^ε}(n/B)) update / O(log²_{B^ε}(n/B) + k/B^{1−ε}) query
// trade-off of the dynamic index, and — the part a live feed cares
// about — paginating the result via DB.Snapshot, so pages fetched
// while the window keeps rolling stitch together with no tearing: no
// event vanishes between pages, none appears twice.
package main

import (
	"fmt"
	"math/rand"

	"repro"
	"repro/internal/geom"
)

func main() {
	const window = 20000
	rng := rand.New(rand.NewSource(7))

	db, err := repro.Open(repro.Options{
		Machine: repro.MachineConfig{B: 128, M: 128 * 64},
		Epsilon: 0.5,
		Dynamic: true,
	}, nil)
	if err != nil {
		panic(err)
	}

	var live []repro.Point
	nextX := repro.Coord(0)
	usedY := map[repro.Coord]bool{}

	insert := func() {
		nextX += 1 + repro.Coord(rng.Int63n(16))
		y := repro.Coord(rng.Int63n(1 << 30))
		for usedY[y] {
			y = repro.Coord(rng.Int63n(1 << 30))
		}
		usedY[y] = true
		p := repro.Point{X: nextX, Y: y}
		if err := db.Insert(p); err != nil {
			panic(err)
		}
		live = append(live, p)
	}

	// Fill the window.
	for i := 0; i < window; i++ {
		insert()
	}

	// Roll the window: each step expires the oldest event and admits a
	// new one, querying periodically.
	var queryIOs, updateIOs, queries, updates uint64
	for step := 0; step < 3000; step++ {
		db.ResetStats()
		old := live[0]
		live = live[1:]
		if ok, err := db.Delete(old); err != nil || !ok {
			panic(fmt.Sprintf("delete %v: %v %v", old, ok, err))
		}
		insert()
		updateIOs += db.Stats().IOs()
		updates += 2

		if step%50 == 0 {
			x1 := live[rng.Intn(len(live)/2)].X
			x2 := x1 + repro.Coord(rng.Int63n(int64(window)*8))
			beta := repro.Coord(rng.Int63n(1 << 30))
			db.ResetStats()
			ans := db.TopOpen(x1, x2, beta)
			queryIOs += db.Stats().IOs()
			queries++
			want := geom.RangeSkyline(live, geom.TopOpen(x1, x2, beta))
			if len(ans) != len(want) {
				panic(fmt.Sprintf("step %d: answer size %d, oracle %d", step, len(ans), len(want)))
			}
		}
	}
	fmt.Printf("window=%d events, 3000 roll steps\n", window)
	fmt.Printf("avg update cost: %.1f I/Os\n", float64(updateIOs)/float64(updates))
	fmt.Printf("avg query  cost: %.1f I/Os over %d queries (oracle-checked)\n",
		float64(queryIOs)/float64(queries), queries)

	// Paginate the feed through a snapshot. A staircase paginates with
	// a resume token — the last point p of a page: every remaining
	// skyline point has x > p.X, and any of its dominators does too, so
	// TopOpen(p.X+1, ∞, beta) is exactly the rest of the staircase
	// (each fetch then keeps the first pageSize points, a LIMIT). On
	// the live index the window rolling between fetches could delete a
	// page boundary or push new maxima into an already-read range; on
	// the pinned snapshot the pages must stitch into the exact skyline
	// at pin time, however far the live index has moved on.
	snap, err := db.Snapshot()
	if err != nil {
		panic(err)
	}
	frozen := append([]repro.Point(nil), live...)
	const pageSize = 4
	x1, beta := frozen[0].X, repro.Coord(0)
	var feed []repro.Point
	pages := 0
	for fromX := x1; ; {
		rest := snap.TopOpen(fromX, repro.PosInf, beta)
		if len(rest) == 0 {
			break
		}
		page := rest
		if len(page) > pageSize {
			page = page[:pageSize]
		}
		feed = append(feed, page...)
		pages++
		if len(rest) <= pageSize {
			break
		}
		fromX = page[len(page)-1].X + 1
		// The stream does not wait for the reader: roll the window
		// between page fetches.
		for i := 0; i < 40; i++ {
			old := live[0]
			live = live[1:]
			if ok, err := db.Delete(old); err != nil || !ok {
				panic(fmt.Sprintf("delete %v: %v %v", old, ok, err))
			}
			insert()
		}
	}
	snap.Close()
	want := geom.RangeSkyline(frozen, geom.TopOpen(x1, repro.PosInf, beta))
	if len(feed) != len(want) {
		panic(fmt.Sprintf("paginated feed tore: %d events, want %d", len(feed), len(want)))
	}
	for i := range feed {
		if feed[i] != want[i] {
			panic(fmt.Sprintf("paginated feed tore at %d: %v, want %v", i, feed[i], want[i]))
		}
	}
	fmt.Printf("paginated feed: %d events in %d pages of <=%d while the window rolled on — no tearing\n",
		len(feed), pages, pageSize)
}
